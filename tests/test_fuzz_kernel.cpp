// Seeded randomized differential harness for the simulation kernels.
//
// For each seed a random synchronous design is generated — a random
// module graph over 1–4 clock domains with random periods and phases
// (including coprime ratios), mixing declared registers, combinational
// mixers with data-dependent reads, internal-state accumulators
// (seq_touch()), opaque modules (no declaration, conservative path),
// exotic signal widths (1/63/64-bit among the ordinary ones, stressing
// the VCD emitter and the Bus truncation boundary), and optionally
// strict-mode devices (a sync FifoCore and a dual-clock AsyncFifo)
// driven without backpressure so their ProtocolErrors actually fire:
// the harness catches each throw, suppresses the enables for the
// retried tick, and re-enables afterwards — exercising the
// transactional clock-edge contract on designs nobody hand-wrote.
// Each design is simulated twice — once under the event-driven kernel,
// once under the full-sweep reference — and, when multi-domain, again
// under the parallel settle engine at threads 1, 2 and 4.  Cycle
// counts, tick counts, every signal's final value, the per-domain edge
// statistics, the caught-throw count and the *bytes* of the VCD
// waveform must agree exactly across all of them.
//
// Every future scheduler change is thereby checked against the
// reference on designs nobody hand-wrote.  On failure the seed is in
// the assertion message — replay it with
//
//   HWPAT_FUZZ_BASE=<seed> HWPAT_FUZZ_SEEDS=1 ./test_fuzz_kernel
//
// HWPAT_FUZZ_SEEDS (default 120) and HWPAT_FUZZ_BASE (default 1)
// select the seed range [BASE, BASE+SEEDS); CI runs the default set in
// the normal matrix and a longer randomized range (base = the CI run
// id) under ASan+UBSan.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "devices/async_fifo.hpp"
#include "devices/fifo.hpp"
#include "rtl/clock.hpp"
#include "rtl/simulator.hpp"
#include "tb_util.hpp"

namespace hwpat {
namespace {

using rtl::Bit;
using rtl::Bus;
using rtl::ClockDomain;
using rtl::Module;
using rtl::Simulator;

// ------------------------------------------------------------------
// Random leaf modules.  Construction is fully deterministic in the
// rng, so two FuzzDesigns built from the same seed are identical —
// the property the differential comparison rests on.
// ------------------------------------------------------------------

/// Register: out <= f(a, b) at each edge of its domain.
struct FuzzReg : Module {
  Bus& out;
  const Bus& a;
  const Bus& b;
  Word k;
  FuzzReg(Module* parent, std::string name, Bus& o, const Bus& ia,
          const Bus& ib, Word kk)
      : Module(parent, std::move(name)), out(o), a(ia), b(ib), k(kk) {}
  void on_clock() override {
    out.write(a.read() * 3 + b.read() + k);
  }
  void declare_state() override { register_seq(out); }
};

/// Combinational mixer: out = g(a, b) — pure wires.
struct FuzzComb : Module {
  Bus& out;
  const Bus& a;
  const Bus& b;
  Word k;
  FuzzComb(Module* parent, std::string name, Bus& o, const Bus& ia,
           const Bus& ib, Word kk)
      : Module(parent, std::move(name)), out(o), a(ia), b(ib), k(kk) {}
  void eval_comb() override {
    out.write((a.read() ^ (b.read() << 1)) + k);
  }
  // Pure comb: pruned from the activation list (declare_comb_only).
  void declare_state() override { declare_comb_only(); }
};

/// Data-dependent reads: out = sel's low bit ? a : b.  Exercises the
/// dynamic sensitivity discovery (the read set depends on sel).
struct FuzzMux : Module {
  Bus& out;
  const Bus& sel;
  const Bus& a;
  const Bus& b;
  FuzzMux(Module* parent, std::string name, Bus& o, const Bus& s,
          const Bus& ia, const Bus& ib)
      : Module(parent, std::move(name)), out(o), sel(s), a(ia), b(ib) {}
  void eval_comb() override {
    out.write((sel.read() & 1) != 0 ? a.read() : b.read());
  }
  void declare_state() override { declare_comb_only(); }
};

/// Internal C++ state read by eval_comb(): the seq_touch() half of the
/// declared-state contract.  The accumulator only reports a touch when
/// the state actually changed.
struct FuzzAccum : Module {
  Bus& out;
  const Bus& a;
  const Bus& b;
  Word acc = 0;
  FuzzAccum(Module* parent, std::string name, Bus& o, const Bus& ia,
            const Bus& ib)
      : Module(parent, std::move(name)), out(o), a(ia), b(ib) {}
  void eval_comb() override { out.write(acc ^ b.read()); }
  void on_clock() override {
    const Word next = acc + a.read();
    if (next != acc) {
      acc = next;
      seq_touch();
    }
  }
  void on_reset() override { acc = 0; }
  void declare_state() override { declare_seq_state(); }
  void save_state(rtl::StateWriter& w) const override { w.word(acc); }
  void load_state(rtl::StateReader& r) override { acc = r.word(); }
};

/// Strict sync FIFO under suppressible random pressure: the enables
/// come straight from random top wires with NO backpressure gating, so
/// underflow/overflow ProtocolErrors genuinely fire; the shared
/// `suppress` bit (written by the harness after a catch) forces both
/// enables low so the retried tick succeeds.
struct FuzzStrictFifo : Module {
  Bit wr_en{*this, "wr_en"};
  Bit rd_en{*this, "rd_en"};
  Bit empty{*this, "empty"};
  Bit full{*this, "full"};
  Bus wr_data{*this, "wr_data", 8};
  Bus rd_data{*this, "rd_data", 8};
  Bus level{*this, "level", 8};
  const Bus& a;
  const Bus& b;
  const Bit& suppress;
  devices::FifoCore fifo;
  FuzzStrictFifo(Module* parent, std::string name, const Bus& ia,
                 const Bus& ib, const Bit& sup)
      : Module(parent, std::move(name)),
        a(ia),
        b(ib),
        suppress(sup),
        fifo(this, "fifo", {.width = 8, .depth = 2, .strict = true},
             {wr_en, wr_data, rd_en, rd_data, empty, full, level}) {}
  void eval_comb() override {
    const bool sup = suppress.read();
    wr_en.write(!sup && (a.read() & 1) != 0);
    rd_en.write(!sup && (b.read() & 1) != 0);
    wr_data.write(a.read() ^ (b.read() << 2));
  }
  void declare_state() override { declare_comb_only(); }
};

/// Same pressure pattern over the dual-clock AsyncFifo (the two sides
/// on harness-chosen, possibly distinct, domains).
struct FuzzStrictAsync : Module {
  Bit wr_en{*this, "wr_en"};
  Bit rd_en{*this, "rd_en"};
  Bit empty{*this, "empty"};
  Bit full{*this, "full"};
  Bus wr_data{*this, "wr_data", 8};
  Bus rd_data{*this, "rd_data", 8};
  const Bus& a;
  const Bus& b;
  const Bit& suppress;
  devices::AsyncFifo fifo;
  FuzzStrictAsync(Module* parent, std::string name, const Bus& ia,
                  const Bus& ib, const Bit& sup,
                  const ClockDomain* wr_domain,
                  const ClockDomain* rd_domain)
      : Module(parent, std::move(name)),
        a(ia),
        b(ib),
        suppress(sup),
        fifo(this, "afifo", {.width = 8, .depth = 2, .strict = true},
             {wr_en, wr_data, full, rd_en, rd_data, empty}, wr_domain,
             rd_domain) {}
  void eval_comb() override {
    const bool sup = suppress.read();
    wr_en.write(!sup && (a.read() & 2) != 0);
    rd_en.write(!sup && (b.read() & 2) != 0);
    wr_data.write((a.read() << 1) ^ b.read());
  }
  void declare_state() override { declare_comb_only(); }
};

/// No declaration at all: the conservative opaque fallback path.
struct FuzzOpaque : Module {
  Bus& out;
  const Bus& a;
  Word state = 1;
  FuzzOpaque(Module* parent, std::string name, Bus& o, const Bus& ia)
      : Module(parent, std::move(name)), out(o), a(ia) {}
  void eval_comb() override { out.write(state + a.read()); }
  void on_clock() override { state = state * 5 + a.read() + 1; }
  void on_reset() override { state = 1; }
  // deliberately NO declare_state(): opaque_state() stays true
  void save_state(rtl::StateWriter& w) const override { w.word(state); }
  void load_state(rtl::StateReader& r) override { state = r.word(); }
};

// ------------------------------------------------------------------
// Random design generator
// ------------------------------------------------------------------

struct FuzzDesign : Module {
  std::vector<std::unique_ptr<ClockDomain>> domains;
  std::vector<std::unique_ptr<Bus>> wires;  // wire i is driven by module i
  std::vector<std::unique_ptr<Module>> mods;
  int steps;  ///< how many edge events the harness runs

  explicit FuzzDesign(unsigned seed) : Module(nullptr, "fuzz") {
    std::mt19937 rng(seed);
    const auto pick = [&](int lo, int hi) {
      return lo + static_cast<int>(rng() % static_cast<unsigned>(
                                               hi - lo + 1));
    };

    // 1–3 explicit domains with random periods (coprime pairs likely)
    // and random sub-period phases; unassigned modules inherit the
    // top, which half the time stays in the built-in default domain —
    // up to 4 partitions total.
    static constexpr std::int64_t kPeriods[] = {1, 2, 3, 4, 5, 7};
    const int ndom = pick(1, 3);
    for (int d = 0; d < ndom; ++d) {
      const std::int64_t period = kPeriods[rng() % 6];
      const std::int64_t phase =
          static_cast<std::int64_t>(rng()) % period;
      // += instead of operator+ dodges a gcc-12 -Wrestrict false
      // positive on the rvalue-string operator+ overloads; same below.
      std::string dn = "dom";
      dn += std::to_string(d);
      domains.push_back(
          std::make_unique<ClockDomain>(std::move(dn), period, phase));
    }
    if (pick(0, 1) != 0) set_clock_domain(domains[0].get());

    // All wires first (owned by the top, like design port bundles).
    // Mostly ordinary widths, with occasional 1/63/64-bit extremes to
    // stress the single-bit VCD form, the 64-bit emit loop and the Bus
    // truncation boundary (mask_of(64) must not shift by 64).
    const int nmod = pick(8, 20);
    for (int i = 0; i < nmod; ++i) {
      std::string wn = "w";
      wn += std::to_string(i);
      const int sel = pick(0, 11);
      const int width = sel == 0   ? 1
                        : sel == 1 ? 63
                        : sel == 2 ? 64
                                   : pick(4, 16);
      wires.push_back(
          std::make_unique<Bus>(*this, std::move(wn), width));
    }

    // ...then the modules.  Module i drives wire i.  Combinational
    // modules read only wires driven by *earlier* modules, so the comb
    // graph is acyclic by construction; sequential modules may read
    // anything (feedback through registers is legal hardware).  The
    // rng draws are hoisted into locals so the draw order is fixed by
    // the source, not by argument evaluation order.
    for (int i = 0; i < nmod; ++i) {
      const auto any = [&] {
        return wires[rng() % wires.size()].get();
      };
      const auto earlier = [&] {
        return wires[rng() % static_cast<unsigned>(i)].get();
      };
      Bus& out = *wires[static_cast<std::size_t>(i)];
      std::string nm = "m";
      nm += std::to_string(i);
      // Module 0 has no earlier wire to read: always make it a
      // register (self-feedback through a register is a counter, not a
      // comb loop).  Registers are twice as likely elsewhere too: they
      // drive all activity.
      const int kind = i == 0 ? 0 : pick(0, 5);
      switch (kind) {
        case 0:
        case 1: {
          Bus* a = any();
          Bus* b = any();
          const Word k = rng() % 255 + 1;
          mods.push_back(
              std::make_unique<FuzzReg>(this, nm, out, *a, *b, k));
          break;
        }
        case 2: {
          Bus* a = earlier();
          Bus* b = earlier();
          const Word k = rng() % 255;
          mods.push_back(
              std::make_unique<FuzzComb>(this, nm, out, *a, *b, k));
          break;
        }
        case 3: {
          Bus* s = earlier();
          Bus* a = earlier();
          Bus* b = earlier();
          mods.push_back(
              std::make_unique<FuzzMux>(this, nm, out, *s, *a, *b));
          break;
        }
        case 4: {
          Bus* a = any();
          Bus* b = earlier();
          mods.push_back(
              std::make_unique<FuzzAccum>(this, nm, out, *a, *b));
          break;
        }
        default: {
          // The opaque module reads its input combinationally too, so
          // it must respect the earlier-wires-only comb DAG rule.
          Bus* a = earlier();
          mods.push_back(std::make_unique<FuzzOpaque>(this, nm, out, *a));
          break;
        }
      }
      // Random domain assignment: explicit domain or inherit the top.
      if (const int d = pick(0, ndom); d < ndom)
        mods.back()->set_clock_domain(domains[static_cast<std::size_t>(d)]
                                          .get());
    }

    // Half the seeds add strict-mode devices under suppressible random
    // pressure: a sync FifoCore and a dual-clock AsyncFifo whose
    // ProtocolErrors the harness catches and retries (see run_kernel).
    if (pick(0, 1) != 0) {
      suppress = std::make_unique<Bit>(*this, "suppress");
      const Bus* a = wires[rng() % wires.size()].get();
      const Bus* b = wires[rng() % wires.size()].get();
      strict_sync = std::make_unique<FuzzStrictFifo>(this, "sfifo", *a,
                                                     *b, *suppress);
      if (const int d = pick(0, ndom); d < ndom)
        strict_sync->set_clock_domain(
            domains[static_cast<std::size_t>(d)].get());
      const Bus* c = wires[rng() % wires.size()].get();
      const Bus* e = wires[rng() % wires.size()].get();
      const ClockDomain* wd =
          domains[rng() % static_cast<unsigned>(ndom)].get();
      const ClockDomain* rd =
          domains[rng() % static_cast<unsigned>(ndom)].get();
      strict_async = std::make_unique<FuzzStrictAsync>(
          this, "safifo", *c, *e, *suppress, wd, rd);
    }
    steps = pick(30, 120);
  }

  std::unique_ptr<Bit> suppress;  ///< harness-written strict-retry gate
  std::unique_ptr<FuzzStrictFifo> strict_sync;
  std::unique_ptr<FuzzStrictAsync> strict_async;

  void declare_state() override { declare_seq_state(); }
};

// ------------------------------------------------------------------
// Differential run
// ------------------------------------------------------------------

struct RunResult {
  std::uint64_t cycles = 0;
  std::uint64_t ticks = 0;
  std::uint64_t throws = 0;  ///< caught-and-retried ProtocolErrors
  std::vector<Word> values;
  std::string vcd;
  Simulator::Stats stats;
};

RunResult run_kernel(unsigned seed, bool full_sweep, int threads = 0) {
  FuzzDesign d(seed);
  const std::string path = "fuzz_" + std::to_string(seed) +
                           (full_sweep ? "_ref" : "_evt") +
                           (threads > 0 ? "_t" + std::to_string(threads)
                                        : std::string()) +
                           ".vcd";
  RunResult out;
  {
    Simulator sim(d, {.full_sweep = full_sweep, .threads = threads});
    sim.open_vcd(path);
    sim.reset();
    for (int i = 0; i < d.steps; ++i) {
      // Caught-and-retried strict throws: suppress the enables, re-fire
      // the same tick (which must now succeed — the transactional edge
      // contract guarantees the aborted attempt left no trace), then
      // re-enable the pressure for the next step.
      for (int tries = 0;; ++tries) {
        try {
          sim.step();
          break;
        } catch (const ProtocolError&) {
          if (d.suppress == nullptr || tries > 0) throw;
          ++out.throws;
          d.suppress->write(true);
        }
      }
      if (d.suppress != nullptr) d.suppress->write(false);
    }
    out.cycles = sim.cycle();
    out.ticks = sim.now();
    out.stats = sim.stats();
    for (const auto& w : d.wires) out.values.push_back(w->read());
  }  // destroying the simulator flushes the VCD stream
  out.vcd = tb::slurp_and_remove(path);
  return out;
}

unsigned env_or(const char* name, unsigned dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return static_cast<unsigned>(std::strtoull(v, nullptr, 10));
}

TEST(FuzzKernel, EventKernelMatchesFullSweepOnRandomDesigns) {
  const unsigned base = env_or("HWPAT_FUZZ_BASE", 1);
  const unsigned count = env_or("HWPAT_FUZZ_SEEDS", 120);
  std::uint64_t multi_domain = 0, with_partition_skips = 0;
  std::uint64_t strict_throws = 0;
  for (unsigned seed = base; seed < base + count; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (replay: HWPAT_FUZZ_BASE=" + std::to_string(seed) +
                 " HWPAT_FUZZ_SEEDS=1 ./test_fuzz_kernel)");
    const RunResult evt = run_kernel(seed, false);
    const RunResult ref = run_kernel(seed, true);
    ASSERT_EQ(evt.cycles, ref.cycles);
    ASSERT_EQ(evt.ticks, ref.ticks);
    ASSERT_EQ(evt.values, ref.values);
    ASSERT_EQ(evt.stats.edges, ref.stats.edges);
    ASSERT_EQ(evt.stats.domain_edges, ref.stats.domain_edges);
    // Both kernels must hit (and roll back) the same strict-device
    // throws at the same steps — the shared validate phase guarantees
    // the conditions are evaluated on identical settled values.
    ASSERT_EQ(evt.throws, ref.throws);
    ASSERT_EQ(evt.vcd, ref.vcd) << "VCD bytes differ";
    // The event kernel must never do more comb work than the sweep.
    ASSERT_LE(evt.stats.evals, ref.stats.evals);
    strict_throws += evt.throws;
    if (evt.stats.partition_skips > 0) ++with_partition_skips;
    if (evt.stats.domain_edges.size() > 1) {
      ++multi_domain;
      // Thread-count sweep: the parallel settle engine must reproduce
      // the single-threaded event kernel bit for bit — same values,
      // same deterministic counters, same caught throws, same VCD.
      for (const int threads : {1, 2, 4}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const RunResult par = run_kernel(seed, false, threads);
        ASSERT_EQ(par.cycles, evt.cycles);
        ASSERT_EQ(par.ticks, evt.ticks);
        ASSERT_EQ(par.values, evt.values);
        ASSERT_EQ(par.throws, evt.throws);
        ASSERT_EQ(par.stats.evals, evt.stats.evals);
        ASSERT_EQ(par.stats.commits, evt.stats.commits);
        ASSERT_EQ(par.stats.deltas, evt.stats.deltas);
        ASSERT_EQ(par.stats.seq_skips, evt.stats.seq_skips);
        ASSERT_EQ(par.stats.partition_settles,
                  evt.stats.partition_settles);
        ASSERT_EQ(par.stats.partition_skips, evt.stats.partition_skips);
        ASSERT_EQ(par.stats.edges, evt.stats.edges);
        ASSERT_EQ(par.stats.domain_edges, evt.stats.domain_edges);
        ASSERT_EQ(par.vcd, evt.vcd) << "VCD bytes differ";
      }
    }
  }
  // The generator must actually exercise the multi-domain machinery,
  // not degenerate into single-clock designs — and the strict devices
  // must genuinely throw (and be retried) somewhere in the sweep.
  EXPECT_GT(multi_domain, count / 2);
  EXPECT_GT(with_partition_skips, 0u);
  if (count >= 20) {
    EXPECT_GT(strict_throws, 0u);
  }
}

// ------------------------------------------------------------------
// Snapshot / fault-injection / replay mode
//
// For each seed (HWPAT_FUZZ_SNAP_BASE/HWPAT_FUZZ_SNAP_SEEDS): run the
// design uninterrupted, snapshotting at a random quiet step; run it
// again with a random fault plan armed past the snapshot point, let
// the fault fire, restore the snapshot, and replay the remainder.
// The replayed half must be byte-identical to the uninterrupted run —
// values, every counter, and the VCD bytes — and the snapshot itself
// must round-trip bit-stably, including across simulator instances.
// ------------------------------------------------------------------

/// One step with the strict-device retry protocol of run_kernel():
/// suppress the random pressure after a caught ProtocolError, re-fire
/// the tick, re-enable afterwards.  FaultInjected passes through.
std::uint64_t step_with_retry(Simulator& sim, FuzzDesign& d) {
  std::uint64_t throws = 0;
  for (int tries = 0;; ++tries) {
    try {
      sim.step();
      break;
    } catch (const ProtocolError&) {
      if (d.suppress == nullptr || tries > 0) throw;
      ++throws;
      d.suppress->write(true);
    }
  }
  if (d.suppress != nullptr) d.suppress->write(false);
  return throws;
}

/// Runs the full scenario for one (seed, kernel, threads) triple.
/// Returns false when the seed was skipped (no quiet snapshot point —
/// pathological designs that throw on every remaining step).  Reports
/// the design's domain count and whether the injected fault fired.
bool run_snapshot_scenario(unsigned seed, bool full_sweep, int threads,
                           std::size_t* domain_count, bool* fault_fired) {
  std::mt19937 rng(seed ^ 0x5eedu);
  const std::string tag = "snap_" + std::to_string(seed) +
                          (full_sweep ? "_ref" : "_evt") +
                          (threads > 0 ? "_t" + std::to_string(threads)
                                       : std::string());

  // --- Uninterrupted reference run, snapshotting on the way ---------
  FuzzDesign d1(seed);
  const int steps = d1.steps;
  const int snap_at =
      1 + static_cast<int>(rng() % static_cast<unsigned>(steps - 2));
  rtl::Snapshot blob;
  int eff = 0;  ///< effective (quiet) snapshot step, >= snap_at
  RunResult ref;
  const std::string ref_path = tag + "_ref.vcd";
  {
    Simulator sim(d1, {.full_sweep = full_sweep, .threads = threads});
    *domain_count = sim.stats().domain_edges.size();
    sim.reset();
    int done = 0;
    for (; done < snap_at; ++done) ref.throws += step_with_retry(sim, d1);
    // A step retried after a strict throw leaves the suppress
    // re-enable write pending, which save_snapshot() correctly
    // refuses to capture — shift to the first quiet step.  The shift
    // is deterministic (throws are deterministic per design), so the
    // fault run below lands on the same step.
    for (;;) {
      try {
        blob = sim.save_snapshot();
        break;
      } catch (const Error&) {
        if (done >= steps - 1) return false;  // no quiet point: skip seed
        ref.throws += step_with_retry(sim, d1);
        ++done;
      }
    }
    eff = done;
    sim.open_vcd(ref_path);
    for (; done < steps; ++done) ref.throws += step_with_retry(sim, d1);
    ref.cycles = sim.cycle();
    ref.ticks = sim.now();
    ref.stats = sim.stats();
    for (const auto& w : d1.wires) ref.values.push_back(w->read());
  }
  ref.vcd = tb::slurp_and_remove(ref_path);

  // --- Fault run: crash past the snapshot point, restore, replay ----
  FuzzDesign d2(seed);
  static constexpr const char* kPoints[] = {"check", "edge", "settle",
                                            "commit"};
  const std::string plan = std::string(kPoints[rng() % 4]) + "@" +
                           std::to_string(eff + 1 +
                                          static_cast<int>(rng() % 3)) +
                           "+" + std::to_string(rng() % 2);
  RunResult rep;
  const std::string rep_path = tag + "_rep.vcd";
  {
    Simulator sim(d2, {.full_sweep = full_sweep,
                       .threads = threads,
                       .fault_plan = plan});
    sim.reset();
    for (int done = 0; done < eff; ++done)
      rep.throws += step_with_retry(sim, d2);
    // Cross-instance determinism: an independently constructed design
    // stepped to the same point serializes to the identical blob.
    const rtl::Snapshot blob2 = sim.save_snapshot();
    EXPECT_EQ(blob2.bytes(), blob.bytes())
        << "snapshot not deterministic across instances (plan " << plan
        << ")";
    // Run into the armed fault (or to the end if it never becomes
    // eligible); everything from here until the restore is the
    // "crashed" timeline the snapshot must erase.
    for (int extra = eff; extra < steps; ++extra) {
      try {
        (void)step_with_retry(sim, d2);
      } catch (const rtl::FaultInjected&) {
        break;
      }
    }
    *fault_fired = sim.fault_fired();
    // Restore the other instance's blob (cross-instance restore) and
    // require the round trip to be bit-stable.
    sim.restore_snapshot(blob);
    const rtl::Snapshot blob3 = sim.save_snapshot();
    EXPECT_EQ(blob3.bytes(), blob.bytes())
        << "snapshot/restore/snapshot not bit-stable (plan " << plan
        << ")";
    sim.open_vcd(rep_path);
    for (int done = eff; done < steps; ++done)
      rep.throws += step_with_retry(sim, d2);
    rep.cycles = sim.cycle();
    rep.ticks = sim.now();
    rep.stats = sim.stats();
    for (const auto& w : d2.wires) rep.values.push_back(w->read());
  }
  rep.vcd = tb::slurp_and_remove(rep_path);

  // --- The replayed timeline must be indistinguishable --------------
  EXPECT_EQ(rep.cycles, ref.cycles) << "plan " << plan;
  EXPECT_EQ(rep.ticks, ref.ticks) << "plan " << plan;
  EXPECT_EQ(rep.values, ref.values) << "plan " << plan;
  EXPECT_EQ(rep.throws, ref.throws) << "plan " << plan;
  EXPECT_EQ(rep.stats.steps, ref.stats.steps);
  EXPECT_EQ(rep.stats.settles, ref.stats.settles);
  EXPECT_EQ(rep.stats.deltas, ref.stats.deltas);
  EXPECT_EQ(rep.stats.evals, ref.stats.evals);
  EXPECT_EQ(rep.stats.commits, ref.stats.commits);
  EXPECT_EQ(rep.stats.commit_changes, ref.stats.commit_changes);
  EXPECT_EQ(rep.stats.seq_touches, ref.stats.seq_touches);
  EXPECT_EQ(rep.stats.seq_skips, ref.stats.seq_skips);
  EXPECT_EQ(rep.stats.edges, ref.stats.edges);
  EXPECT_EQ(rep.stats.domain_edges, ref.stats.domain_edges);
  EXPECT_EQ(rep.vcd, ref.vcd)
      << "replayed VCD bytes differ (plan " << plan << ")";
  return true;
}

TEST(FuzzKernel, SnapshotFaultRestoreReplaysByteIdentically) {
  const unsigned base = env_or("HWPAT_FUZZ_SNAP_BASE", 1);
  const unsigned count = env_or("HWPAT_FUZZ_SNAP_SEEDS", 25);
  std::uint64_t ran = 0, skipped = 0, fired = 0;
  for (unsigned seed = base; seed < base + count; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (replay: HWPAT_FUZZ_SNAP_BASE=" + std::to_string(seed) +
                 " HWPAT_FUZZ_SNAP_SEEDS=1 ./test_fuzz_kernel)");
    std::size_t domains = 0;
    bool f = false;
    if (!run_snapshot_scenario(seed, false, 0, &domains, &f)) {
      ++skipped;
      continue;
    }
    ++ran;
    if (f) ++fired;
    ASSERT_FALSE(::testing::Test::HasFailure());
    ASSERT_TRUE(run_snapshot_scenario(seed, true, 0, &domains, &f));
    if (f) ++fired;
    ASSERT_FALSE(::testing::Test::HasFailure());
    if (domains > 1) {
      for (const int threads : {1, 2, 4}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ASSERT_TRUE(
            run_snapshot_scenario(seed, false, threads, &domains, &f));
        if (f) ++fired;
        ASSERT_FALSE(::testing::Test::HasFailure());
      }
    }
  }
  // The mode must genuinely exercise the machinery: most seeds find a
  // quiet snapshot point, and the injected faults actually fire.
  EXPECT_GT(ran, skipped);
  if (count >= 10) { EXPECT_GT(fired, 0u); }
}

}  // namespace
}  // namespace hwpat
