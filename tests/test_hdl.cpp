// Unit tests of the VHDL AST and emitter.
#include <gtest/gtest.h>

#include "hdl/emit.hpp"

namespace hwpat::hdl {
namespace {

TEST(Type, Rendering) {
  EXPECT_EQ(Type::bit().str(), "std_logic");
  EXPECT_EQ(Type::vec(8).str(), "std_logic_vector(7 downto 0)");
  EXPECT_EQ(Type::vec(16).width(), 16);
  EXPECT_EQ(Type::bit().width(), 1);
}

TEST(Entity, PortLookup) {
  Entity e{.name = "x",
           .generics = {},
           .ports = {{"a", PortDir::In, Type::bit(), ""},
                     {"b", PortDir::Out, Type::vec(4), ""}}};
  ASSERT_NE(e.find_port("b"), nullptr);
  EXPECT_EQ(e.find_port("b")->type.width(), 4);
  EXPECT_EQ(e.find_port("zz"), nullptr);
  EXPECT_EQ(e.port_names(), (std::vector<std::string>{"a", "b"}));
}

TEST(Emit, EntityWithGroupedPorts) {
  Entity e;
  e.name = "rbuffer_fifo";
  e.ports = {{"m_pop", PortDir::In, Type::bit(), "methods"},
             {"data", PortDir::Out, Type::vec(8), "params"},
             {"p_empty", PortDir::In, Type::bit(),
              "implementation interface"}};
  const std::string v = emit_entity(e);
  EXPECT_NE(v.find("entity rbuffer_fifo is"), std::string::npos);
  EXPECT_NE(v.find("-- methods"), std::string::npos);
  EXPECT_NE(v.find("-- params"), std::string::npos);
  EXPECT_NE(v.find("-- implementation interface"), std::string::npos);
  EXPECT_NE(v.find("m_pop : in std_logic;"), std::string::npos);
  EXPECT_NE(v.find("data : out std_logic_vector(7 downto 0);"),
            std::string::npos);
  // Last port: no trailing semicolon.
  EXPECT_NE(v.find("p_empty : in std_logic\n"), std::string::npos);
  EXPECT_NE(v.find("end rbuffer_fifo;"), std::string::npos);
}

TEST(Emit, EntityWithGenerics) {
  Entity e;
  e.name = "g";
  e.generics = {{"WIDTH", "natural", "8"}, {"DEPTH", "natural", ""}};
  const std::string v = emit_entity(e);
  EXPECT_NE(v.find("WIDTH : natural := 8;"), std::string::npos);
  EXPECT_NE(v.find("DEPTH : natural\n"), std::string::npos);
}

TEST(Emit, ArchitectureAssignsAndSignals) {
  Architecture a;
  a.of = "wrapper";
  a.signals.push_back({"tmp", Type::vec(8), "(others => '0')"});
  a.body.push_back(Assign{"data", "p_data"});
  const std::string v = emit_architecture(a);
  EXPECT_NE(v.find("architecture rtl of wrapper is"), std::string::npos);
  EXPECT_NE(
      v.find("signal tmp : std_logic_vector(7 downto 0) := (others => "
             "'0');"),
      std::string::npos);
  EXPECT_NE(v.find("data <= p_data;"), std::string::npos);
}

TEST(Emit, ClockedProcessHasResetAndEdge) {
  Architecture a;
  a.of = "x";
  Process p;
  p.label = "fsm";
  p.clocked = true;
  p.reset_body = {"count <= (others => '0');"};
  p.body = {"count <= count + 1;"};
  a.body.push_back(p);
  const std::string v = emit_architecture(a);
  EXPECT_NE(v.find("fsm : process (clk, rst)"), std::string::npos);
  EXPECT_NE(v.find("if rst = '1' then"), std::string::npos);
  EXPECT_NE(v.find("elsif rising_edge(clk) then"), std::string::npos);
}

TEST(Emit, CombinationalProcessSensitivity) {
  Architecture a;
  a.of = "x";
  Process p;
  p.label = "mux";
  p.sensitivity = {"a", "b", "sel"};
  p.body = {"y <= a when sel = '0' else b;"};
  a.body.push_back(p);
  const std::string v = emit_architecture(a);
  EXPECT_NE(v.find("mux : process (a, b, sel)"), std::string::npos);
}

TEST(Emit, InstancePortMap) {
  Architecture a;
  a.of = "top";
  a.body.push_back(Instance{
      "u0", "fifo", {{"wr_en", "push"}, {"rd_en", "pop"}}});
  const std::string v = emit_architecture(a);
  EXPECT_NE(v.find("u0 : fifo"), std::string::npos);
  EXPECT_NE(v.find("wr_en => push,"), std::string::npos);
  EXPECT_NE(v.find("rd_en => pop\n"), std::string::npos);
}

TEST(Emit, UnitIncludesContextClause) {
  DesignUnit u;
  u.entity.name = "t";
  u.arch.of = "t";
  const std::string v = emit_unit(u);
  EXPECT_NE(v.find("library ieee;"), std::string::npos);
  EXPECT_NE(v.find("use ieee.std_logic_1164.all;"), std::string::npos);
}

TEST(Legalize, Identifiers) {
  EXPECT_EQ(legalize_identifier("RBuffer Fifo"), "rbuffer_fifo");
  EXPECT_EQ(legalize_identifier("a--b__c"), "a_b_c");
  EXPECT_EQ(legalize_identifier("3stage"), "u_3stage");
  EXPECT_EQ(legalize_identifier("trailing_"), "trailing");
  EXPECT_EQ(legalize_identifier(""), "u_");
}

}  // namespace
}  // namespace hwpat::hdl
