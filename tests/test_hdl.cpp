// Unit tests of the VHDL AST, the statement/expression IR, the
// validator and the emitter.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hdl/emit.hpp"

namespace hwpat::hdl {
namespace {

TEST(Type, Rendering) {
  EXPECT_EQ(Type::bit().str(), "std_logic");
  EXPECT_EQ(Type::vec(8).str(), "std_logic_vector(7 downto 0)");
  EXPECT_EQ(Type::vec(16).width(), 16);
  EXPECT_EQ(Type::bit().width(), 1);
}

TEST(Type, Width1VectorIsNotAScalar) {
  const Type v1 = Type::vec(1);
  EXPECT_TRUE(v1.is_vector);
  EXPECT_EQ(v1.width(), 1);
  EXPECT_EQ(v1.str(), "std_logic_vector(0 downto 0)");
  // Same width as a scalar, different type — they must not compare
  // equal, and they render differently.
  EXPECT_FALSE(v1 == Type::bit());
  EXPECT_EQ(Type::bit().width(), v1.width());
}

TEST(Type, NonZeroLowRange) {
  const Type r = Type::range(9, 2);
  EXPECT_EQ(r.width(), 8);
  EXPECT_EQ(r.str(), "std_logic_vector(9 downto 2)");
  EXPECT_EQ(Type::range(4, 4).width(), 1);
}

TEST(Type, DegenerateRangeHasWidthZero) {
  // VHDL's null range (high < low in a downto): width 0, and the
  // validator rejects declaring one (see Validate tests below).
  EXPECT_EQ(Type::range(0, 1).width(), 0);
  EXPECT_EQ(Type::range(-1, 0).width(), 0);
  EXPECT_EQ(Type::range(3, 7).width(), 0);
}

TEST(Identifiers, ReservedWordsAreCaseInsensitive) {
  EXPECT_TRUE(is_reserved_word("signal"));
  EXPECT_TRUE(is_reserved_word("SIGNAL"));
  EXPECT_TRUE(is_reserved_word("DownTo"));
  EXPECT_FALSE(is_reserved_word("signal_a"));
}

TEST(Identifiers, Legality) {
  EXPECT_TRUE(is_legal_identifier("wr_clk"));
  EXPECT_TRUE(is_legal_identifier("a1_b2"));
  EXPECT_FALSE(is_legal_identifier(""));
  EXPECT_FALSE(is_legal_identifier("1abc"));      // digit first
  EXPECT_FALSE(is_legal_identifier("_abc"));      // underscore first
  EXPECT_FALSE(is_legal_identifier("a__b"));      // double underscore
  EXPECT_FALSE(is_legal_identifier("trailing_")); // trailing underscore
  EXPECT_FALSE(is_legal_identifier("a-b"));       // bad character
  EXPECT_FALSE(is_legal_identifier("process"));   // reserved
}

TEST(Identifiers, ValidateNamesTheField) {
  EXPECT_NO_THROW(validate_identifier("done", "port name"));
  try {
    validate_identifier("signal", "port name");
    FAIL() << "reserved word accepted";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("port name"), std::string::npos);
    EXPECT_NE(msg.find("reserved word"), std::string::npos);
  }
  try {
    validate_identifier("2fast", "signal name");
    FAIL() << "illegal identifier accepted";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("signal name"), std::string::npos);
    EXPECT_NE(msg.find("not a legal"), std::string::npos);
  }
}

TEST(Entity, PortLookup) {
  Entity e{.name = "x",
           .generics = {},
           .ports = {{"a", PortDir::In, Type::bit(), ""},
                     {"b", PortDir::Out, Type::vec(4), ""}}};
  ASSERT_NE(e.find_port("b"), nullptr);
  EXPECT_EQ(e.find_port("b")->type.width(), 4);
  EXPECT_EQ(e.find_port("zz"), nullptr);
  EXPECT_EQ(e.port_names(), (std::vector<std::string>{"a", "b"}));
}

// ------------------------------------------------------ expressions

TEST(Expr, PrecedenceDrivenParens) {
  // Relational binds tighter than logical: no parens needed.
  EXPECT_EQ(emit_expr(and_(eq(sig("m_push"), bitl('1')),
                           eq(sig("m_pop"), bitl('0')))),
            "m_push = '1' and m_pop = '0'");
  // An or-child of an and gets parens (equal precedence, different op).
  EXPECT_EQ(emit_expr(and_(or_(sig("a"), sig("b")), sig("c"))),
            "(a or b) and c");
  // Same-op chains stay flat.
  EXPECT_EQ(emit_expr(and_(and_(sig("a"), sig("b")), sig("c"))),
            "a and b and c");
  // A logical child of a relational gets parens.
  EXPECT_EQ(emit_expr(eq(sig("wgray"), xor_(sig("rgray_w2"),
                                            bitsl("1100")))),
            "wgray = (rgray_w2 xor \"1100\")");
  // not binds tight; only looser operands need parens.
  EXPECT_EQ(emit_expr(and_(sig("m_done"), not_(sig("asm_valid")))),
            "m_done and not asm_valid");
  EXPECT_EQ(emit_expr(not_(and_(sig("a"), sig("b")))), "not (a and b)");
  // '-' is not chainable: both sides parenthesize at equal precedence.
  EXPECT_EQ(emit_expr(sub(sig("a"), sub(sig("b"), sig("c")))),
            "a - (b - c)");
  EXPECT_EQ(emit_expr(sub(sub(sig("a"), sig("b")), sig("c"))),
            "(a - b) - c");
}

TEST(Expr, CallsSlicesAndAttributes) {
  EXPECT_EQ(emit_expr(slv(add(uns(sig("count")), num(1)))),
            "std_logic_vector(unsigned(count) + 1)");
  EXPECT_EQ(emit_expr(concat(sig("m_data"),
                             slice(sig("shift_reg"), 23, 8))),
            "m_data & shift_reg(23 downto 8)");
  EXPECT_EQ(emit_expr(idx(sig("mem"),
                          to_int(uns(slice(sig("wbin"), 5, 0))))),
            "mem(to_integer(unsigned(wbin(5 downto 0))))");
  EXPECT_EQ(emit_expr(resize_(uns(sig("ptr_end")),
                              attr_len(sig("p_addr")))),
            "resize(unsigned(ptr_end), p_addr'length)");
  EXPECT_EQ(emit_expr(when_else(eq(sig("state"), bitsl("00")),
                                bitl('1'), bitl('0'))),
            "'1' when state = \"00\" else '0'");
  EXPECT_EQ(emit_expr(others0()), "(others => '0')");
}

// ------------------------------------------------------- emission

TEST(Emit, EntityWithGroupedPorts) {
  Entity e;
  e.name = "rbuffer_fifo";
  e.ports = {{"m_pop", PortDir::In, Type::bit(), "methods"},
             {"data", PortDir::Out, Type::vec(8), "params"},
             {"p_empty", PortDir::In, Type::bit(),
              "implementation interface"}};
  const std::string v = emit_entity(e);
  EXPECT_NE(v.find("entity rbuffer_fifo is"), std::string::npos);
  EXPECT_NE(v.find("-- methods"), std::string::npos);
  EXPECT_NE(v.find("-- params"), std::string::npos);
  EXPECT_NE(v.find("-- implementation interface"), std::string::npos);
  EXPECT_NE(v.find("m_pop : in std_logic;"), std::string::npos);
  EXPECT_NE(v.find("data : out std_logic_vector(7 downto 0);"),
            std::string::npos);
  // Last port: no trailing semicolon.
  EXPECT_NE(v.find("p_empty : in std_logic\n"), std::string::npos);
  EXPECT_NE(v.find("end rbuffer_fifo;"), std::string::npos);
}

TEST(Emit, EntityWithGenerics) {
  Entity e;
  e.name = "g";
  e.generics = {{"WIDTH", "natural", "8"}, {"DEPTH", "natural", ""}};
  const std::string v = emit_entity(e);
  EXPECT_NE(v.find("WIDTH : natural := 8;"), std::string::npos);
  EXPECT_NE(v.find("DEPTH : natural\n"), std::string::npos);
}

TEST(Emit, ArchitectureAssignsAndSignals) {
  Architecture a;
  a.of = "wrapper";
  a.signals.push_back({"tmp", Type::vec(8), "", "(others => '0')"});
  a.body.push_back(Assign{sig("data"), sig("p_data")});
  const std::string v = emit_architecture(a);
  EXPECT_NE(v.find("architecture rtl of wrapper is"), std::string::npos);
  EXPECT_NE(
      v.find("signal tmp : std_logic_vector(7 downto 0) := (others => "
             "'0');"),
      std::string::npos);
  EXPECT_NE(v.find("data <= p_data;"), std::string::npos);
}

TEST(Emit, ArrayTypeAndTypedSignal) {
  Architecture a;
  a.of = "x";
  a.types.push_back({"mem_t", 8, 64});
  a.signals.push_back({"mem", Type::bit(), "mem_t", ""});
  const std::string v = emit_architecture(a);
  EXPECT_NE(v.find("type mem_t is array (0 to 63) of "
                   "std_logic_vector(7 downto 0);"),
            std::string::npos);
  EXPECT_NE(v.find("signal mem : mem_t;"), std::string::npos);
}

TEST(Emit, ClockedProcessHasResetAndEdge) {
  Architecture a;
  a.of = "x";
  Process p;
  p.label = "fsm";
  p.clocked = true;
  p.reset_body = {assign(sig("count"), others0())};
  p.body = {assign(sig("count"), slv(add(uns(sig("count")), num(1))))};
  a.body.push_back(p);
  const std::string v = emit_architecture(a);
  EXPECT_NE(v.find("fsm : process (clk, rst)"), std::string::npos);
  EXPECT_NE(v.find("if rst = '1' then"), std::string::npos);
  EXPECT_NE(v.find("elsif rising_edge(clk) then"), std::string::npos);
  EXPECT_NE(v.find("count <= std_logic_vector(unsigned(count) + 1);"),
            std::string::npos);
}

TEST(Emit, ClockedProcessWithPerDomainClock) {
  Architecture a;
  a.of = "x";
  Process p;
  p.label = "wr_ptr";
  p.clocked = true;
  p.clock = "wr_clk";
  p.reset = "wr_rst";
  p.reset_body = {assign(sig("wbin"), others0())};
  p.body = {assign(sig("wbin"), sig("wbin_next"))};
  a.body.push_back(p);
  const std::string v = emit_architecture(a);
  EXPECT_NE(v.find("wr_ptr : process (wr_clk, wr_rst)"),
            std::string::npos);
  EXPECT_NE(v.find("if wr_rst = '1' then"), std::string::npos);
  EXPECT_NE(v.find("elsif rising_edge(wr_clk) then"), std::string::npos);
}

TEST(Emit, CombinationalProcessSensitivity) {
  Architecture a;
  a.of = "x";
  Process p;
  p.label = "mux";
  p.sensitivity = {"a", "b", "sel"};
  p.body = {assign(sig("y"), when_else(eq(sig("sel"), bitl('0')),
                                       sig("a"), sig("b")))};
  a.body.push_back(p);
  const std::string v = emit_architecture(a);
  EXPECT_NE(v.find("mux : process (a, b, sel)"), std::string::npos);
  EXPECT_NE(v.find("y <= a when sel = '0' else b;"), std::string::npos);
}

TEST(Emit, CaseStatement) {
  Architecture a;
  a.of = "x";
  Process p;
  p.label = "fsm";
  p.clocked = true;
  p.body = {CaseStmt{
      sig("state"),
      {{false, bitsl("00"), "idle", {assign(sig("state"), bitsl("01"))}},
       {true, {}, "", {assign(sig("state"), bitsl("00"))}}}}};
  a.body.push_back(p);
  const std::string v = emit_architecture(a);
  EXPECT_NE(v.find("case state is"), std::string::npos);
  EXPECT_NE(v.find("when \"00\" =>  -- idle"), std::string::npos);
  EXPECT_NE(v.find("when others =>"), std::string::npos);
  EXPECT_NE(v.find("end case;"), std::string::npos);
}

TEST(Emit, RawLinesEscapeHatchIsVerbatim) {
  Architecture a;
  a.of = "x";
  Process p;
  p.label = "legacy";
  p.clocked = true;
  p.body = {RawLines{{"-- handwritten island", "foo <= bar;"}}};
  a.body.push_back(p);
  const std::string v = emit_architecture(a);
  EXPECT_NE(v.find("      -- handwritten island\n"), std::string::npos);
  EXPECT_NE(v.find("      foo <= bar;\n"), std::string::npos);
}

TEST(Emit, InstancePortMap) {
  Architecture a;
  a.of = "top";
  a.body.push_back(Instance{
      "u0", "fifo", {{"wr_en", "push"}, {"rd_en", "pop"}}});
  const std::string v = emit_architecture(a);
  EXPECT_NE(v.find("u0 : fifo"), std::string::npos);
  EXPECT_NE(v.find("wr_en => push,"), std::string::npos);
  EXPECT_NE(v.find("rd_en => pop\n"), std::string::npos);
}

TEST(Emit, UnitIncludesContextClause) {
  DesignUnit u;
  u.entity.name = "t";
  u.arch.of = "t";
  const std::string v = emit_unit(u);
  EXPECT_NE(v.find("library ieee;"), std::string::npos);
  EXPECT_NE(v.find("use ieee.std_logic_1164.all;"), std::string::npos);
}

// ------------------------------------------------------ validation

DesignUnit small_unit() {
  DesignUnit u;
  u.entity.name = "t";
  u.entity.ports = {{"clk", PortDir::In, Type::bit(), ""},
                    {"rst", PortDir::In, Type::bit(), ""},
                    {"data", PortDir::Out, Type::vec(8), ""},
                    {"done", PortDir::Out, Type::bit(), ""}};
  u.arch.of = "t";
  return u;
}

TEST(Validate, AcceptsAWellFormedUnit) {
  DesignUnit u = small_unit();
  u.arch.signals.push_back({"tmp", Type::vec(8), "", "(others => '0')"});
  u.arch.body.push_back(Assign{sig("data"), sig("tmp")});
  u.arch.body.push_back(Assign{sig("done"), bitl('1')});
  EXPECT_NO_THROW(validate_unit(u));
}

TEST(Validate, RejectsUndeclaredName) {
  DesignUnit u = small_unit();
  u.arch.body.push_back(Assign{sig("done"), sig("nope")});
  EXPECT_THROW(validate_unit(u), Error);
}

TEST(Validate, RejectsWidthMismatch) {
  DesignUnit u = small_unit();
  u.arch.signals.push_back({"narrow", Type::vec(4), "", ""});
  u.arch.body.push_back(Assign{sig("data"), sig("narrow")});
  EXPECT_THROW(validate_unit(u), Error);
}

TEST(Validate, RejectsUnsignedIntoVectorWithoutCast) {
  DesignUnit u = small_unit();
  u.arch.signals.push_back({"count", Type::vec(8), "", ""});
  u.arch.body.push_back(
      Assign{sig("count"), add(uns(sig("count")), num(1))});
  EXPECT_THROW(validate_unit(u), Error);
}

TEST(Validate, RejectsNonBooleanCondition) {
  DesignUnit u = small_unit();
  Process p;
  p.label = "fsm";
  p.clocked = true;
  p.body = {IfStmt{{IfArm{sig("rst"),  // std_logic, not boolean
                          {assign(sig("done"), bitl('0'))}}},
                   {}}};
  u.arch.body.push_back(p);
  EXPECT_THROW(validate_unit(u), Error);
}

TEST(Validate, RejectsOutOfRangeSlice) {
  DesignUnit u = small_unit();
  u.arch.body.push_back(
      Assign{sig("done"), idx(slice(sig("data"), 9, 2), num(0))});
  EXPECT_THROW(validate_unit(u), Error);
}

TEST(Validate, RejectsReservedPortName) {
  DesignUnit u = small_unit();
  u.entity.ports.push_back({"signal", PortDir::In, Type::bit(), ""});
  EXPECT_THROW(validate_unit(u), Error);
}

TEST(Validate, RejectsDuplicateSignal) {
  DesignUnit u = small_unit();
  u.arch.signals.push_back({"tmp", Type::vec(8), "", ""});
  u.arch.signals.push_back({"tmp", Type::bit(), "", ""});
  EXPECT_THROW(validate_unit(u), Error);
}

TEST(Validate, RejectsDegenerateRangeDeclaration) {
  DesignUnit u = small_unit();
  u.arch.signals.push_back({"bad", Type::range(0, 1), "", ""});
  EXPECT_THROW(validate_unit(u), Error);
}

TEST(Validate, RejectsLogicalMixOfScalarAndVector) {
  DesignUnit u = small_unit();
  u.arch.body.push_back(Assign{sig("done"), and_(sig("rst"), sig("data"))});
  EXPECT_THROW(validate_unit(u), Error);
}

TEST(Validate, MemorySignalsIndexAndRejectWholeAssign) {
  DesignUnit u = small_unit();
  u.arch.types.push_back({"mem_t", 8, 16});
  u.arch.signals.push_back({"mem", Type::bit(), "mem_t", ""});
  u.arch.body.push_back(
      Assign{sig("data"), idx(sig("mem"), num(3))});
  EXPECT_NO_THROW(validate_unit(u));
  DesignUnit bad = small_unit();
  bad.arch.types.push_back({"mem_t", 8, 16});
  bad.arch.signals.push_back({"mem", Type::bit(), "mem_t", ""});
  bad.arch.signals.push_back({"mem2", Type::bit(), "mem_t", ""});
  bad.arch.body.push_back(Assign{sig("mem2"), sig("mem")});
  EXPECT_THROW(validate_unit(bad), Error);
}

TEST(Validate, EmitUnitRunsTheValidator) {
  DesignUnit u = small_unit();
  u.arch.body.push_back(Assign{sig("done"), sig("ghost")});
  EXPECT_THROW((void)emit_unit(u), Error);
}

TEST(Validate, RawLinesAreSkipped) {
  DesignUnit u = small_unit();
  Process p;
  p.label = "legacy";
  p.clocked = true;
  p.body = {RawLines{{"anything <= goes;"}}};
  u.arch.body.push_back(p);
  EXPECT_NO_THROW(validate_unit(u));
}

// ------------------------------------------------------- legalize

TEST(Legalize, Identifiers) {
  EXPECT_EQ(legalize_identifier("RBuffer Fifo"), "rbuffer_fifo");
  EXPECT_EQ(legalize_identifier("a--b__c"), "a_b_c");
  EXPECT_EQ(legalize_identifier("3stage"), "u_3stage");
  EXPECT_EQ(legalize_identifier("trailing_"), "trailing");
  // Empty input must still produce a *legal* identifier (the old "u_"
  // fallback had a trailing underscore).
  EXPECT_EQ(legalize_identifier(""), "u_x");
  EXPECT_TRUE(is_legal_identifier(legalize_identifier("")));
  // Reserved words get prefixed out of the way.
  EXPECT_EQ(legalize_identifier("Signal"), "u_signal");
  EXPECT_TRUE(is_legal_identifier(legalize_identifier("PROCESS")));
}

}  // namespace
}  // namespace hwpat::hdl
