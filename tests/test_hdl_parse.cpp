// Tests of the structural VHDL re-reader: expression round-trips,
// parse failures, and whole-unit emit -> parse -> re-emit byte
// identity (the contract that keeps generated output inside the
// structured subset).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hdl/emit.hpp"
#include "hdl/parse.hpp"

namespace hwpat::hdl {
namespace {

TEST(ParseExpr, RoundTripsEmitterOutput) {
  // Every string here is exactly what the emitter produces for some
  // tree; parse must rebuild a tree that re-emits the same bytes.
  const char* cases[] = {
      "m_push = '1' and m_pop = '0'",
      "(a or b) and c",
      "a and b and c",
      "not (a and b)",
      "not a or not b",
      "a - (b - c)",
      "(a - b) - c",
      "x /= y",
      "std_logic_vector(unsigned(count) + 1)",
      "std_logic_vector(shift_right(unsigned(wbin_next), 1) xor "
      "unsigned(wbin_next))",
      "mem(to_integer(unsigned(wbin(5 downto 0))))",
      "resize(unsigned(ptr_end), p_addr'length) + 3",
      "to_unsigned(0, 4)",
      "m_data & shift_reg(23 downto 8)",
      "data(7 downto 0)",
      "(others => '0')",
      "'1' when wgray = (rgray_w2 xor \"1100\") else '0'",
      "a when c1 = '1' else b when c2 = '1' else d",
  };
  for (const char* text : cases) {
    EXPECT_EQ(emit_expr(parse_expr(text)), text) << "input: " << text;
  }
}

TEST(ParseExpr, DiscardsGroupingParens) {
  // Redundant parens are legal input; the emitter re-derives only the
  // needed ones, so they normalize away.
  EXPECT_EQ(emit_expr(parse_expr("(m_push = '1') and (m_pop = '0')")),
            "m_push = '1' and m_pop = '0'");
  EXPECT_EQ(emit_expr(parse_expr("((a)) and (b)")), "a and b");
}

TEST(ParseExpr, BuildsLeftAssociativeChains) {
  const Expr e = parse_expr("a and b and c");
  ASSERT_EQ(e.kind, ExprKind::Binary);
  EXPECT_EQ(e.text, "and");
  EXPECT_EQ(e.args.at(0).kind, ExprKind::Binary);  // (a and b)
  EXPECT_EQ(e.args.at(1).kind, ExprKind::Name);    // c
}

TEST(ParseExpr, DistinguishesSliceIndexCallAndAttr) {
  EXPECT_EQ(parse_expr("v(7 downto 0)").kind, ExprKind::Slice);
  EXPECT_EQ(parse_expr("v(3)").kind, ExprKind::Index);
  EXPECT_EQ(parse_expr("unsigned(v)").kind, ExprKind::Call);
  EXPECT_EQ(parse_expr("v'length").kind, ExprKind::Attr);
  // A non-function name followed by parens is an index, not a call.
  EXPECT_EQ(parse_expr("mem(i)").kind, ExprKind::Index);
}

TEST(ParseExpr, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_expr("wbin +"), Error);
  EXPECT_THROW((void)parse_expr("a b"), Error);
  EXPECT_THROW((void)parse_expr("foo(1 2)"), Error);
  EXPECT_THROW((void)parse_expr("'x'"), Error);
  EXPECT_THROW((void)parse_expr("(others => '1')"), Error);
  EXPECT_THROW((void)parse_expr("\"01"), Error);
  EXPECT_THROW((void)parse_expr(""), Error);
}

TEST(ParseUnit, RejectsNonEmitterText) {
  EXPECT_THROW((void)parse_unit("this is not vhdl"), Error);
  EXPECT_THROW((void)parse_unit("entity x is\nend y;\n"), Error);
}

/// A unit exercising every construct the emitter can produce:
/// generics, grouped ports, array types, memory signals, component
/// declarations, instances, comments, a dual-domain clocked process
/// with nested if/case, and a combinational process.
DesignUnit full_feature_unit() {
  DesignUnit u;
  u.entity.name = "rt_demo";
  u.entity.generics = {{"DEPTH", "natural", "16"}};
  u.entity.ports = {
      {"wr_clk", PortDir::In, Type::bit(), "clocks"},
      {"wr_rst", PortDir::In, Type::bit(), "clocks"},
      {"m_push", PortDir::In, Type::bit(), "methods"},
      {"data", PortDir::Out, Type::vec(8), "params"},
      {"p_full", PortDir::Out, Type::bit(), "implementation interface"},
  };
  Architecture& a = u.arch;
  a.of = "rt_demo";
  a.component_decls.push_back(
      "component sync_ff\n  port (\n    d : in std_logic\n  );\nend "
      "component;");
  a.types.push_back({"mem_t", 8, 16});
  a.signals.push_back({"mem", Type::bit(), "mem_t", ""});
  a.signals.push_back({"state", Type::vec(2), "", "(others => '0')"});
  a.signals.push_back({"cnt", Type::vec(4), "", "(others => '0')"});
  a.signals.push_back({"flag", Type::bit(), "", ""});

  a.body.push_back(
      Assign{sig("data"), idx(sig("mem"), to_int(uns(sig("cnt"))))});
  a.body.push_back(Assign{sig("p_full"), sig("flag"), "combinational flag"});
  a.body.push_back(Instance{"u0", "sync_ff", {{"d", "flag"}}});

  Process step;
  step.label = "step";
  step.clocked = true;
  step.clock = "wr_clk";
  step.reset = "wr_rst";
  step.reset_body = {assign(sig("cnt"), others0()),
                     assign(sig("state"), others0())};
  step.body = {
      IfStmt{{IfArm{eq(sig("m_push"), bitl('1')),
                    {assign(sig("cnt"), slv(add(uns(sig("cnt")), num(1))))}},
              IfArm{eq(sig("flag"), bitl('1')),
                    {assign(sig("cnt"), others0())}}},
             {assign(sig("state"), bitsl("11"))}},
      CaseStmt{sig("state"),
               {{false, bitsl("00"), "idle",
                 {assign(sig("state"), bitsl("01"))}},
                {true, {}, "", {assign(sig("state"), bitsl("00"))}}}}};
  a.body.push_back(step);

  Process mirror;
  mirror.label = "mirror";
  mirror.sensitivity = {"cnt"};
  mirror.body = {assign(sig("flag"), idx(sig("cnt"), num(0)))};
  a.body.push_back(mirror);
  return u;
}

TEST(ParseUnit, EmitParseReEmitIsByteIdentical) {
  const DesignUnit u = full_feature_unit();
  const std::string first = emit_unit(u);
  const DesignUnit back = parse_unit(first);
  const std::string second = emit_unit(back);
  EXPECT_EQ(first, second);
}

TEST(ParseUnit, RecoversStructureNotJustText) {
  const DesignUnit back = parse_unit(emit_unit(full_feature_unit()));
  EXPECT_EQ(back.entity.name, "rt_demo");
  ASSERT_EQ(back.entity.generics.size(), 1u);
  EXPECT_EQ(back.entity.generics[0].default_value, "16");
  ASSERT_EQ(back.entity.ports.size(), 5u);
  EXPECT_EQ(back.entity.ports[2].group, "methods");
  EXPECT_EQ(back.entity.ports[3].type.width(), 8);
  ASSERT_EQ(back.arch.types.size(), 1u);
  EXPECT_EQ(back.arch.types[0].depth, 16);
  EXPECT_EQ(back.arch.types[0].elem_width, 8);
  ASSERT_EQ(back.arch.signals.size(), 4u);
  EXPECT_EQ(back.arch.signals[0].type_name, "mem_t");
  EXPECT_EQ(back.arch.signals[1].init, "(others => '0')");
  ASSERT_EQ(back.arch.body.size(), 5u);
  EXPECT_EQ(std::get<Assign>(back.arch.body[1]).comment,
            "combinational flag");
  EXPECT_EQ(std::get<Instance>(back.arch.body[2]).component, "sync_ff");

  // The clocked reset/rising_edge idiom folds back into
  // Process{clocked=true} with its per-domain clock and reset.
  const auto& step = std::get<Process>(back.arch.body[3]);
  EXPECT_TRUE(step.clocked);
  EXPECT_EQ(step.clock, "wr_clk");
  EXPECT_EQ(step.reset, "wr_rst");
  EXPECT_TRUE(step.sensitivity.empty());
  EXPECT_EQ(step.reset_body.size(), 2u);
  ASSERT_EQ(step.body.size(), 2u);
  EXPECT_NE(std::get_if<IfStmt>(&step.body[0].v), nullptr);
  EXPECT_NE(std::get_if<CaseStmt>(&step.body[1].v), nullptr);

  const auto& mirror = std::get<Process>(back.arch.body[4]);
  EXPECT_FALSE(mirror.clocked);
  EXPECT_EQ(mirror.sensitivity, (std::vector<std::string>{"cnt"}));
}

TEST(ParseUnit, ParsedUnitsSurviveValidation) {
  // Parsing must yield a tree the validator accepts — the re-reader
  // and the validator agree on what the structured subset is.
  const DesignUnit back = parse_unit(emit_unit(full_feature_unit()));
  EXPECT_NO_THROW(validate_unit(back));
}

}  // namespace
}  // namespace hwpat::hdl
