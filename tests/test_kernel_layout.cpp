// Regression tests for the data-oriented kernel memory layout (ISSUE
// 9): the int16 partition-id truncation guard, the CSR fanout's
// dedup-under-alternation behaviour, the monotone ever-read re-eval
// contract, and the arena footprint accounting.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "rtl/clock.hpp"
#include "rtl/simulator.hpp"
#include "rtl/snapshot.hpp"

namespace hwpat {
namespace {

using rtl::Bit;
using rtl::Bus;
using rtl::ClockDomain;
using rtl::Module;
using rtl::Simulator;

// ------------------------------------------------------------------
// Partition-id truncation guard (satellite bugfix)
// ------------------------------------------------------------------

struct Leaf : Module {
  using Module::Module;
};

/// A top module with `n` children, each in its own clock domain, so the
/// design resolves to exactly `n` settle partitions.
struct ManyDomainTop : Module {
  std::deque<ClockDomain> domains;
  std::vector<std::unique_ptr<Leaf>> leaves;

  explicit ManyDomainTop(std::size_t n) : Module(nullptr, "top") {
    for (std::size_t i = 0; i < n; ++i) {
      // Built with append() — `"d" + std::to_string(i)` trips a bogus
      // gcc-12 -Werror=restrict in the inlined string concatenation.
      std::string dn("d");
      dn.append(std::to_string(i));
      std::string mn("m");
      mn.append(std::to_string(i));
      domains.emplace_back(std::move(dn), 1);
      leaves.push_back(std::make_unique<Leaf>(this, std::move(mn)));
      leaves.back()->set_clock_domain(&domains.back());
    }
  }
};

TEST(PartitionIdGuard, ManyDomainsWithinRangeElaborate) {
  // Comfortably many domains bind fine and keep distinct partitions.
  ManyDomainTop top(300);
  Simulator sim(top);
  EXPECT_EQ(sim.domain_count(), 301u);  // top's default domain + 300
}

TEST(PartitionIdGuard, TooManyDomainsThrowAtElaboration) {
  // Partition ids live in std::int16_t (Module::part_ /
  // SignalBase::part_ and the SoA mirrors): domain index 32768 would
  // wrap negative and corrupt worklist routing.  Before the guard this
  // truncated silently; now elaboration must refuse, loudly and by
  // field name.  32768 child domains + the top's inherited default
  // domain = 32769 partitions, one past the last addressable id.
  ManyDomainTop top(32768);
  try {
    Simulator sim(top);
    FAIL() << "expected Error for 32769 clock domains";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("32768"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Module::part_"), std::string::npos) << msg;
    EXPECT_NE(msg.find("SignalBase::part_"), std::string::npos) << msg;
    EXPECT_NE(msg.find("int16_t"), std::string::npos) << msg;
  }
}

// ------------------------------------------------------------------
// CSR fanout: alternating readers never duplicate entries
// ------------------------------------------------------------------

/// Reads `data` only on the cycles where `sel` matches `want` — so two
/// instances with opposite `want` alternate A,B,A,B,... as `sel`
/// toggles, re-merging their read sets into `data`'s fanout over and
/// over again.
struct AlternatingReader : Module {
  Bus out{*this, "out", 16};
  Bit* sel = nullptr;
  Bus* data = nullptr;
  bool want = false;
  int evals = 0;

  AlternatingReader(Module* parent, std::string name)
      : Module(parent, std::move(name)) {}
  void eval_comb() override {
    ++evals;
    if (sel->read() == want) out.write(data->read() + (want ? 1u : 2u));
  }
};

struct AlternatingTop : Module {
  Bit sel{*this, "sel"};
  Bus data{*this, "data", 16};
  AlternatingReader a{this, "a"};
  AlternatingReader b{this, "b"};

  AlternatingTop() : Module(nullptr, "top") {
    a.sel = &sel;
    a.data = &data;
    a.want = true;
    b.sel = &sel;
    b.data = &data;
    b.want = false;
  }
  void on_clock() override {
    sel.write(!sel.read());
    data.write(data.read() + 1);
  }
  void on_reset() override {
    sel.write(false);
    data.write(0);
  }
  void declare_state() override {
    register_seq(sel);
    register_seq(data);
  }
};

TEST(CsrFanout, AlternatingReadersNeverDuplicateEntries) {
  AlternatingTop top;
  Simulator sim(top);
  sim.reset();
  sim.step(2);  // both readers have taken the data-reading branch once
  ASSERT_EQ(sim.fanout_size(top.data), 2u);
  ASSERT_EQ(sim.fanout_size(top.sel), 2u);
  // Every further toggle re-merges a read set that is already fully
  // contained in the fanout; the seen-stamp dedup must keep the spans
  // at exactly {a, b} forever.
  for (int i = 0; i < 40; ++i) {
    sim.step();
    EXPECT_EQ(sim.fanout_size(top.data), 2u) << "after step " << i;
    EXPECT_EQ(sim.fanout_size(top.sel), 2u) << "after step " << i;
  }
}

TEST(CsrFanout, DedupSurvivesSnapshotRoundTrip) {
  // The snapshot saves fanout lists verbatim and the restore path
  // rejects duplicate entries loudly — a successful round-trip after
  // heavy alternation is an end-to-end witness that the CSR never
  // accumulated one.
  AlternatingTop top;
  Simulator sim(top);
  sim.reset();
  sim.step(17);
  const rtl::Snapshot snap = sim.save_snapshot();
  AlternatingTop fresh_top;
  Simulator fresh(fresh_top);
  ASSERT_NO_THROW(fresh.restore_snapshot(snap));
  EXPECT_EQ(fresh.fanout_size(fresh_top.data), 2u);
  EXPECT_EQ(fresh.fanout_size(fresh_top.sel), 2u);
}

// ------------------------------------------------------------------
// Monotone ever-read re-eval contract
// ------------------------------------------------------------------

/// Reads `data` only while `mode` is high.  Once `mode` drops, the
/// *current* evaluation path no longer touches `data` — but the kernel
/// contract is monotone: having ever read a signal keeps you in its
/// fanout, so changes to `data` must keep re-evaluating this module.
struct ModalReader : Module {
  Bus out{*this, "out", 16};
  Bit* mode = nullptr;
  Bus* data = nullptr;
  int evals = 0;

  ModalReader(Module* parent, std::string name)
      : Module(parent, std::move(name)) {}
  void eval_comb() override {
    ++evals;
    out.write(mode->read() ? data->read() : 0u);
  }
};

struct ModalTop : Module {
  Bit mode{*this, "mode"};
  Bus data{*this, "data", 16};
  ModalReader r{this, "r"};
  bool drive_mode = true;

  ModalTop() : Module(nullptr, "top") {
    r.mode = &mode;
    r.data = &data;
  }
  void on_clock() override {
    mode.write(drive_mode);
    data.write(data.read() + 1);
  }
  void on_reset() override {
    mode.write(true);
    data.write(0);
  }
  void declare_state() override {
    register_seq(mode);
    register_seq(data);
  }
};

TEST(CsrFanout, EverReadSignalKeepsReevaluatingItsReader) {
  ModalTop top;
  Simulator sim(top);
  sim.reset();
  sim.step(3);  // reader has read `data` while mode was high
  ASSERT_EQ(sim.fanout_size(top.data), 1u);

  top.drive_mode = false;
  sim.step();  // mode falls; reader's live path stops touching `data`
  sim.step();  // flush: mode is now stably low
  const int before = top.r.evals;
  const std::size_t fan_before = sim.fanout_size(top.data);

  // Only `data` changes from here on.  The reader must be re-evaluated
  // on every change even though its current branch ignores `data` —
  // dropping it from the fanout (a non-monotone "optimisation") would
  // wedge `out` at a stale value the moment `mode` rose again.
  constexpr int kSteps = 25;
  sim.step(kSteps);
  EXPECT_GE(top.r.evals, before + kSteps);
  EXPECT_EQ(sim.fanout_size(top.data), fan_before);
}

// ------------------------------------------------------------------
// Arena accounting
// ------------------------------------------------------------------

TEST(ArenaFootprint, ElaborationChargesTheArena) {
  AlternatingTop top;
  Simulator sim(top);
  const Simulator::MemoryStats ms = sim.memory_stats();
  EXPECT_GT(ms.arena_bytes_used, 0u);
  EXPECT_GE(ms.arena_bytes_reserved, ms.arena_bytes_used);
  EXPECT_GE(ms.arena_chunks, 1u);

  // Learned fanout grows inside the arena, not on the global heap.
  sim.reset();
  sim.step(4);
  EXPECT_GE(sim.memory_stats().arena_bytes_used, ms.arena_bytes_used);
}

TEST(ArenaFootprint, FanoutSizeRejectsForeignSignals) {
  AlternatingTop top;
  Simulator sim(top);
  AlternatingTop other;
  EXPECT_THROW((void)sim.fanout_size(other.data), Error);
}

}  // namespace
}  // namespace hwpat
