// Meta-layer tests: spec validation, the VHDL generator (with golden
// checks against Figures 4 and 5 of the paper), dead-operation
// elimination in generated interfaces, and the RTL factory.
#include <gtest/gtest.h>

#include "hdl/emit.hpp"
#include "meta/codegen.hpp"
#include "meta/factory.hpp"
#include "rtl/simulator.hpp"
#include "tb_util.hpp"

namespace hwpat::meta {
namespace {

using core::ContainerKind;
using core::IterRole;
using core::Op;
using core::Traversal;

ContainerSpec rbuffer_fifo_spec() {
  ContainerSpec s;
  s.name = "rbuffer";
  s.kind = ContainerKind::ReadBuffer;
  s.device = DeviceKind::FifoCore;
  s.elem_bits = 8;
  s.depth = 512;
  return s;
}

ContainerSpec rbuffer_sram_spec() {
  ContainerSpec s = rbuffer_fifo_spec();
  s.device = DeviceKind::Sram;
  s.addr_bits = 16;
  return s;
}

// ----------------------------------------------------------- specs

TEST(Spec, DefaultsAreValid) {
  EXPECT_NO_THROW(validate(rbuffer_fifo_spec()));
  EXPECT_NO_THROW(validate(rbuffer_sram_spec()));
}

TEST(Spec, IllegalKindDeviceRejected) {
  ContainerSpec s = rbuffer_fifo_spec();
  s.kind = ContainerKind::Vector;  // vector over a FIFO core: no
  EXPECT_THROW(validate(s), SpecError);
}

TEST(Spec, UnknownMethodRejected) {
  ContainerSpec s = rbuffer_fifo_spec();
  s.used_methods = {Method::Insert};  // rbuffer has no insert
  EXPECT_THROW(validate(s), SpecError);
}

TEST(Spec, BusWiderThanElementRejected) {
  ContainerSpec s = rbuffer_sram_spec();
  s.bus_bits = 32;  // elem is 8
  EXPECT_THROW(validate(s), SpecError);
}

TEST(Spec, SharedRequiresSram) {
  ContainerSpec s = rbuffer_fifo_spec();
  s.shared_device = true;
  EXPECT_THROW(validate(s), SpecError);
}

TEST(Spec, AccessesPerElement) {
  ContainerSpec s = rbuffer_sram_spec();
  s.elem_bits = 24;
  s.bus_bits = 8;
  EXPECT_EQ(s.accesses_per_element(), 3);  // the §3.3 RGB scenario
  s.bus_bits = 24;
  EXPECT_EQ(s.accesses_per_element(), 1);
  s.bus_bits = 0;
  EXPECT_EQ(s.accesses_per_element(), 1);
}

TEST(Spec, IteratorValidation) {
  IteratorSpec is;
  is.container = rbuffer_fifo_spec();
  is.traversal = Traversal::Forward;
  is.role = IterRole::Input;
  EXPECT_NO_THROW(validate(is));
  is.traversal = Traversal::Backward;  // rbuffer is forward-only
  EXPECT_THROW(validate(is), SpecError);
  is.traversal = Traversal::Forward;
  is.used_ops = core::OpSet{Op::Write};  // input iterators don't write
  EXPECT_THROW(validate(is), SpecError);
}

TEST(Spec, MethodNamesRender) {
  EXPECT_EQ(to_string(Method::Pop), "pop");
  EXPECT_EQ(to_string(Method::Lookup), "lookup");
}

// -------------------------------------------- Fig. 4 golden: FIFO

TEST(CodegenFig4, RbufferFifoEntityMatchesThePaper) {
  const auto unit = generate_container(rbuffer_fifo_spec());
  EXPECT_EQ(unit.entity.name, "rbuffer_fifo");

  // The method strobes of Fig. 4.
  ASSERT_NE(unit.entity.find_port("m_empty"), nullptr);
  ASSERT_NE(unit.entity.find_port("m_size"), nullptr);
  ASSERT_NE(unit.entity.find_port("m_pop"), nullptr);
  // The param ports.
  const auto* data = unit.entity.find_port("data");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->dir, hdl::PortDir::Out);
  EXPECT_EQ(data->type.width(), 8);
  ASSERT_NE(unit.entity.find_port("done"), nullptr);
  // The implementation interface of the FIFO binding.
  const auto* p_empty = unit.entity.find_port("p_empty");
  ASSERT_NE(p_empty, nullptr);
  EXPECT_EQ(p_empty->dir, hdl::PortDir::In);
  const auto* p_read = unit.entity.find_port("p_read");
  ASSERT_NE(p_read, nullptr);
  EXPECT_EQ(p_read->dir, hdl::PortDir::Out);
  const auto* p_data = unit.entity.find_port("p_data");
  ASSERT_NE(p_data, nullptr);
  EXPECT_EQ(p_data->type.width(), 8);
  // No SRAM-style ports in the FIFO binding.
  EXPECT_EQ(unit.entity.find_port("p_addr"), nullptr);
  EXPECT_EQ(unit.entity.find_port("req"), nullptr);
}

TEST(CodegenFig4, RenderedTextHasFig4Shape) {
  const std::string v = to_vhdl(generate_container(rbuffer_fifo_spec()));
  EXPECT_NE(v.find("entity rbuffer_fifo is"), std::string::npos);
  EXPECT_NE(v.find("-- methods"), std::string::npos);
  EXPECT_NE(v.find("-- params"), std::string::npos);
  EXPECT_NE(v.find("-- implementation interface"), std::string::npos);
  EXPECT_NE(v.find("m_pop : in std_logic"), std::string::npos);
  EXPECT_NE(v.find("data : out std_logic_vector(7 downto 0)"),
            std::string::npos);
  EXPECT_NE(v.find("p_data : in std_logic_vector(7 downto 0)"),
            std::string::npos);
  EXPECT_NE(v.find("end rbuffer_fifo;"), std::string::npos);
  // "The VHDL architecture is simply a wrapper of the FIFO core":
  EXPECT_NE(v.find("p_read <= m_pop;"), std::string::npos);
  EXPECT_NE(v.find("data <= p_data;"), std::string::npos);
}

// -------------------------------------------- Fig. 5 golden: SRAM

TEST(CodegenFig5, RbufferSramImplementationInterface) {
  const auto unit = generate_container(rbuffer_sram_spec());
  EXPECT_EQ(unit.entity.name, "rbuffer_sram");
  // Fig. 5's delta: p_addr(15:0), p_data, req, ack.
  const auto* p_addr = unit.entity.find_port("p_addr");
  ASSERT_NE(p_addr, nullptr);
  EXPECT_EQ(p_addr->dir, hdl::PortDir::Out);
  EXPECT_EQ(p_addr->type.width(), 16);
  const auto* p_data = unit.entity.find_port("p_data");
  ASSERT_NE(p_data, nullptr);
  EXPECT_EQ(p_data->dir, hdl::PortDir::In);
  EXPECT_EQ(p_data->type.width(), 8);
  ASSERT_NE(unit.entity.find_port("req"), nullptr);
  ASSERT_NE(unit.entity.find_port("ack"), nullptr);
  // No FIFO-style ports.
  EXPECT_EQ(unit.entity.find_port("p_empty"), nullptr);
  EXPECT_EQ(unit.entity.find_port("p_read"), nullptr);
  // The functional interface is untouched by the retarget: exactly the
  // point of the pattern.
  ASSERT_NE(unit.entity.find_port("m_pop"), nullptr);
  ASSERT_NE(unit.entity.find_port("data"), nullptr);
  ASSERT_NE(unit.entity.find_port("done"), nullptr);
}

TEST(CodegenFig5, ArchitectureHasTheLittleFsmAndPointers) {
  const std::string v = to_vhdl(generate_container(rbuffer_sram_spec()));
  EXPECT_NE(v.find("signal ptr_begin"), std::string::npos);
  EXPECT_NE(v.find("signal ptr_end"), std::string::npos);
  EXPECT_NE(v.find("mem_fsm : process (clk, rst)"), std::string::npos);
  EXPECT_NE(v.find("rising_edge(clk)"), std::string::npos);
}

TEST(Codegen, FunctionalPortsIdenticalAcrossBindings) {
  // The m_*/params sections must be byte-identical between Fig. 4 and
  // Fig. 5 — only the implementation interface may differ.
  const auto fifo = generate_container(rbuffer_fifo_spec());
  const auto sram = generate_container(rbuffer_sram_spec());
  std::vector<hdl::Port> ffunc, sfunc;
  for (const auto& p : fifo.entity.ports)
    if (p.group != "implementation interface") ffunc.push_back(p);
  for (const auto& p : sram.entity.ports)
    if (p.group != "implementation interface") sfunc.push_back(p);
  EXPECT_EQ(ffunc, sfunc);
}

// ------------------------------------ dead-operation elimination

TEST(Codegen, MethodPruningRemovesPortsAndLogic) {
  ContainerSpec s = rbuffer_fifo_spec();
  s.used_methods = {Method::Pop};  // drop empty/size
  const auto unit = generate_container(s);
  EXPECT_NE(unit.entity.find_port("m_pop"), nullptr);
  EXPECT_EQ(unit.entity.find_port("m_empty"), nullptr);
  EXPECT_EQ(unit.entity.find_port("m_size"), nullptr);
  // Without `size`, no counter process is generated.
  const std::string v = to_vhdl(unit);
  EXPECT_EQ(v.find("size_counter"), std::string::npos);

  ContainerSpec full = rbuffer_fifo_spec();  // all methods
  const std::string vf = to_vhdl(generate_container(full));
  EXPECT_NE(vf.find("size_counter"), std::string::npos);
  EXPECT_GT(vf.size(), v.size());
}

TEST(Codegen, IteratorOpsPruned) {
  IteratorSpec is;
  is.container = rbuffer_fifo_spec();
  is.traversal = Traversal::Forward;
  is.role = IterRole::Input;
  is.used_ops = core::OpSet{Op::Read};
  const auto unit = generate_iterator(is);
  EXPECT_NE(unit.entity.find_port("op_read"), nullptr);
  EXPECT_EQ(unit.entity.find_port("op_inc"), nullptr);
  EXPECT_EQ(unit.entity.find_port("op_write"), nullptr);
  EXPECT_EQ(unit.entity.find_port("pos"), nullptr);
}

TEST(Codegen, WrapperIteratorIsJustRenames) {
  IteratorSpec is;
  is.container = rbuffer_fifo_spec();
  is.traversal = Traversal::Forward;
  is.role = IterRole::Input;
  const auto unit = generate_iterator(is);
  // No registers, no processes: pure renaming assignments.
  EXPECT_TRUE(unit.arch.signals.empty());
  for (const auto& c : unit.arch.body)
    EXPECT_TRUE(std::holds_alternative<hdl::Assign>(c));
}

TEST(Codegen, WidthAdaptedIteratorHasLaneMachinery) {
  IteratorSpec is;
  is.container = rbuffer_sram_spec();
  is.container.elem_bits = 24;
  is.container.bus_bits = 8;
  is.traversal = Traversal::Forward;
  is.role = IterRole::Input;
  const auto unit = generate_iterator(is);
  const std::string v = to_vhdl(unit);
  EXPECT_NE(v.find("signal lane"), std::string::npos);
  EXPECT_NE(v.find("signal shift_reg"), std::string::npos);
  EXPECT_NE(v.find("width_adapt : process"), std::string::npos);
  // Element-facing port is 24 bit, device-facing 8 bit.
  EXPECT_EQ(unit.entity.find_port("data")->type.width(), 24);
  EXPECT_EQ(unit.entity.find_port("m_data")->type.width(), 8);
}

// --------------------------------- algorithm metamodels (extension)

TEST(CodegenAlgo, EndlessCopyFsm) {
  AlgorithmSpec a{.name = "copy", .elem_bits = 8, .op_vhdl = "$x",
                  .count = 0};
  const auto unit = generate_algorithm(a);
  EXPECT_EQ(unit.entity.name, "copy_fsm");
  // Both iterator client interfaces exist.
  for (const char* p : {"in_inc", "in_read", "in_data", "in_done",
                        "out_inc", "out_write", "out_data", "out_done",
                        "start", "busy", "done"})
    EXPECT_NE(unit.entity.find_port(p), nullptr) << p;
  const std::string v = to_vhdl(unit);
  // The parallel handshake of §3.3.
  EXPECT_NE(v.find("go <= running and in_done and out_done;"),
            std::string::npos);
  EXPECT_NE(v.find("out_data <= in_data;"), std::string::npos);
  // Endless: no transfer counter.
  EXPECT_EQ(v.find("transfers"), std::string::npos);
}

TEST(CodegenAlgo, BoundedTransformHasCounterAndOp) {
  AlgorithmSpec a{.name = "invert", .elem_bits = 8,
                  .op_vhdl = "not $x", .count = 100};
  const std::string v = to_vhdl(generate_algorithm(a));
  EXPECT_NE(v.find("out_data <= not in_data;"), std::string::npos);
  EXPECT_NE(v.find("signal transfers"), std::string::npos);
  EXPECT_NE(v.find("unsigned(transfers) = 99"), std::string::npos);
}

TEST(CodegenAlgo, RejectsExpressionWithoutOperand) {
  AlgorithmSpec a{.name = "bad", .elem_bits = 8, .op_vhdl = "'0'",
                  .count = 0};
  EXPECT_THROW(generate_algorithm(a), SpecError);
}

TEST(CodegenAlgo, RejectsBadWidth) {
  AlgorithmSpec a{.name = "w", .elem_bits = 0, .op_vhdl = "$x"};
  EXPECT_THROW(generate_algorithm(a), SpecError);
}

// ------------------------------- dual-clock FIFO core (AsyncFifoCore)

ContainerSpec queue_async_spec() {
  ContainerSpec s;
  s.name = "queue";
  s.kind = ContainerKind::Queue;
  s.device = DeviceKind::AsyncFifoCore;
  s.elem_bits = 8;
  s.depth = 64;
  return s;
}

TEST(CodegenAsync, DualClockCoreHasGrayPointersAndSynchronizers) {
  const auto unit = generate_container(queue_async_spec());
  const std::string v = to_vhdl(unit);

  // One clocked process per concern, each in its own clock domain.
  EXPECT_NE(v.find("wr_ptr : process (wr_clk, wr_rst)"),
            std::string::npos);
  EXPECT_NE(v.find("sync_rptr : process (wr_clk, wr_rst)"),
            std::string::npos);
  EXPECT_NE(v.find("rd_ptr : process (rd_clk, rd_rst)"),
            std::string::npos);
  EXPECT_NE(v.find("sync_wptr : process (rd_clk, rd_rst)"),
            std::string::npos);

  // Gray encoding of the next pointers: g = (b >> 1) xor b.
  EXPECT_NE(
      v.find("wgray_next <= std_logic_vector(shift_right("
             "unsigned(wbin_next), 1) xor unsigned(wbin_next));"),
      std::string::npos);
  // depth 64 -> 6 address bits -> 7 pointer bits; full inverts the top
  // two bits of the synchronized read gray, empty compares graypointers
  // directly.
  EXPECT_NE(v.find("full_i <= '1' when wgray = (rgray_w2 xor "
                   "\"1100000\") else '0';"),
            std::string::npos);
  EXPECT_NE(v.find("empty_i <= '1' when rgray = wgray_r2 else '0';"),
            std::string::npos);
  // 2-flop synchronizer chains in both directions.
  EXPECT_NE(v.find("rgray_w1 <= rgray;"), std::string::npos);
  EXPECT_NE(v.find("rgray_w2 <= rgray_w1;"), std::string::npos);
  EXPECT_NE(v.find("wgray_r1 <= wgray;"), std::string::npos);
  EXPECT_NE(v.find("wgray_r2 <= wgray_r1;"), std::string::npos);
  // Storage array plus show-ahead read data.
  EXPECT_NE(v.find("type mem_t is array (0 to 63) of "
                   "std_logic_vector(7 downto 0);"),
            std::string::npos);
  EXPECT_NE(
      v.find("mem(to_integer(unsigned(wbin(5 downto 0)))) <= data_in;"),
      std::string::npos);
  EXPECT_NE(
      v.find("data <= mem(to_integer(unsigned(rbin(5 downto 0))));"),
      std::string::npos);
  // Enables gated by the domain-local flag.
  EXPECT_NE(v.find("wr_en <= m_push and not full_i;"), std::string::npos);
  EXPECT_NE(v.find("rd_en <= m_pop and not empty_i;"), std::string::npos);
}

TEST(CodegenAsync, BufferBindingsGetPlatformSidePorts) {
  // A read buffer is filled by the platform in the write domain...
  ContainerSpec rb = queue_async_spec();
  rb.kind = ContainerKind::ReadBuffer;
  const auto r = generate_container(rb);
  EXPECT_NE(r.entity.find_port("p_write"), nullptr);
  EXPECT_NE(r.entity.find_port("p_wdata"), nullptr);
  EXPECT_NE(r.entity.find_port("p_full"), nullptr);
  EXPECT_NE(r.entity.find_port("empty"), nullptr);
  EXPECT_EQ(r.entity.find_port("m_push"), nullptr);

  // ...and a write buffer is drained by the platform in the read domain.
  ContainerSpec wb = queue_async_spec();
  wb.kind = ContainerKind::WriteBuffer;
  const auto w = generate_container(wb);
  EXPECT_NE(w.entity.find_port("p_read"), nullptr);
  EXPECT_NE(w.entity.find_port("p_data"), nullptr);
  EXPECT_NE(w.entity.find_port("p_empty"), nullptr);
  EXPECT_NE(w.entity.find_port("full"), nullptr);
  EXPECT_EQ(w.entity.find_port("m_pop"), nullptr);
}

TEST(CodegenAsync, RejectsNonPowerOfTwoDepthAndSize) {
  ContainerSpec s = queue_async_spec();
  s.depth = 100;  // gray-coded pointers need a power of two
  EXPECT_THROW(generate_container(s), SpecError);
  s = queue_async_spec();
  s.used_methods = {Method::Push, Method::Pop, Method::Size};
  EXPECT_THROW(generate_container(s), SpecError);  // no global occupancy
}

// ---------------------------------------- full catalogue generation

TEST(Codegen, EveryLegalBindingGenerates) {
  // The generator must produce a well-formed unit for every legal
  // (kind, device) pair of §3.4 — the whole basic component library.
  int generated = 0;
  for (const auto kind :
       {ContainerKind::Stack, ContainerKind::Queue,
        ContainerKind::ReadBuffer, ContainerKind::WriteBuffer,
        ContainerKind::Vector, ContainerKind::AssocArray}) {
    for (const auto dev : core::legal_devices(kind)) {
      ContainerSpec s;
      s.name = core::to_string(kind);
      s.kind = kind;
      s.device = dev;
      s.elem_bits = 8;
      s.depth = 64;
      const auto unit = generate_container(s);
      EXPECT_FALSE(unit.entity.ports.empty());
      if (dev == DeviceKind::AsyncFifoCore) {
        // Dual-clock: one clock/reset pair per domain, no global clk.
        EXPECT_NE(unit.entity.find_port("wr_clk"), nullptr);
        EXPECT_NE(unit.entity.find_port("rd_clk"), nullptr);
        EXPECT_EQ(unit.entity.find_port("clk"), nullptr);
      } else {
        EXPECT_NE(unit.entity.find_port("clk"), nullptr);
      }
      EXPECT_NE(unit.entity.find_port("done"), nullptr);
      const std::string v = to_vhdl(unit);
      EXPECT_NE(v.find("entity " + unit.entity.name), std::string::npos);
      EXPECT_NE(v.find("end rtl;"), std::string::npos);
      ++generated;
    }
  }
  EXPECT_GE(generated, 15);  // Table 1 x §3.4 legal bindings
}

// ------------------------------------------------------ factory

TEST(Factory, BuildsFifoQueueThatStreams) {
  struct Tb : rtl::Module {
    core::StreamWires w;
    std::unique_ptr<core::Container> cont;
    tb::StreamFeeder feeder;
    tb::StreamDrainer drainer;
    Tb(const ContainerSpec& s, std::vector<Word> data)
        : Module(nullptr, "tb"),
          w(*this, "q", s.elem_bits, 16),
          feeder(this, "f", w.producer(), std::move(data)),
          drainer(this, "d", w.consumer()) {
      cont = build_stream_container(
          this, s, StreamBuildPorts{.method = w.impl()});
    }
  };
  ContainerSpec s;
  s.name = "q";
  s.kind = ContainerKind::Queue;
  s.device = DeviceKind::FifoCore;
  s.elem_bits = 8;
  s.depth = 16;
  Tb tb(s, {5, 6, 7});
  rtl::Simulator sim(tb);
  sim.reset();
  tb::step_until(sim, [&] { return tb.drainer.got().size() == 3; }, 1000);
  EXPECT_EQ(tb.drainer.got(), (std::vector<Word>{5, 6, 7}));
}

TEST(Factory, SramBindingWithoutMemoryPortThrows) {
  rtl::Module top(nullptr, "top");
  core::StreamWires w(top, "q", 8, 16);
  ContainerSpec s;
  s.name = "q";
  s.kind = ContainerKind::Queue;
  s.device = DeviceKind::Sram;
  EXPECT_THROW(build_stream_container(
                   &top, s, StreamBuildPorts{.method = w.impl()}),
               SpecError);
}

TEST(Factory, WidthAdaptingIteratorsRoundTrip) {
  // 24-bit pixels through an 8-bit queue: output iterator splits,
  // input iterator reassembles — §3.3 end to end.
  struct Tb : rtl::Module {
    core::StreamWires q_w;
    core::IterWires in_iw, out_iw;
    std::unique_ptr<core::Container> queue;
    std::unique_ptr<core::Iterator> it_out;
    std::unique_ptr<core::Iterator> it_in;

    Tb() : Module(nullptr, "tb"),
           q_w(*this, "q", 8, 16),
           in_iw(*this, "in", 24, 16),
           out_iw(*this, "out", 24, 16) {
      ContainerSpec cs;
      cs.name = "q";
      cs.kind = ContainerKind::Queue;
      cs.device = DeviceKind::FifoCore;
      cs.elem_bits = 24;
      cs.bus_bits = 8;
      cs.depth = 16;
      queue = build_stream_container(
          this, cs, StreamBuildPorts{.method = q_w.impl()});
      IteratorSpec os{.name = "wit",
                      .traversal = Traversal::Forward,
                      .role = IterRole::Output,
                      .used_ops = {},
                      .container = cs};
      IteratorSpec is{.name = "rit",
                      .traversal = Traversal::Forward,
                      .role = IterRole::Input,
                      .used_ops = {},
                      .container = cs};
      it_out = build_output_iterator(this, os, q_w.producer(),
                                     out_iw.impl());
      it_in = build_input_iterator(this, is, q_w.consumer(),
                                   in_iw.impl());
    }
  };
  Tb tb;
  rtl::Simulator sim(tb);
  sim.reset();

  const std::vector<Word> pixels{0xAABBCC, 0x112233, 0xF0E1D2};
  std::vector<Word> got;
  std::size_t wi = 0;
  for (int cycle = 0; cycle < 500 && got.size() < pixels.size();
       ++cycle) {
    // Drive write side.
    if (wi < pixels.size() && tb.out_iw.ready.read()) {
      tb.out_iw.write.write(true);
      tb.out_iw.inc.write(true);
      tb.out_iw.wdata.write(pixels[wi]);
      ++wi;
    } else {
      tb.out_iw.write.write(false);
      tb.out_iw.inc.write(false);
    }
    // Drive read side.
    if (tb.in_iw.rvalid.read()) {
      got.push_back(tb.in_iw.rdata.read());
      tb.in_iw.read.write(true);
      tb.in_iw.inc.write(true);
    } else {
      tb.in_iw.read.write(false);
      tb.in_iw.inc.write(false);
    }
    sim.step();
  }
  EXPECT_EQ(got, pixels);

  // The adapting iterators carry real resources (they do NOT dissolve).
  rtl::PrimitiveTally t_in, t_out;
  tb.it_in->report(t_in);
  tb.it_out->report(t_out);
  EXPECT_GT(t_in.reg_bits, 24);
  EXPECT_GT(t_out.reg_bits, 23);
  const auto* wai =
      dynamic_cast<const WidthAdaptInputIterator*>(tb.it_in.get());
  ASSERT_NE(wai, nullptr);
  EXPECT_EQ(wai->lanes(), 3);
}

}  // namespace
}  // namespace hwpat::meta
