// Tests of the software golden models themselves (the executable
// specification must be trustworthy before the RTL is checked against
// it).
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/model/model.hpp"

namespace hwpat::core::model {
namespace {

TEST(ModelQueue, FifoSemantics) {
  BoundedQueue<int> q(3);
  EXPECT_TRUE(q.empty());
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_TRUE(q.full());
  EXPECT_EQ(q.front(), 1);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_TRUE(q.empty());
}

TEST(ModelQueue, OverflowUnderflowThrow) {
  BoundedQueue<int> q(1);
  EXPECT_THROW(q.pop(), ProtocolError);
  q.push(1);
  EXPECT_THROW(q.push(2), ProtocolError);
}

TEST(ModelStack, LifoSemantics) {
  BoundedStack<int> s(4);
  s.push(1);
  s.push(2);
  EXPECT_EQ(s.top(), 2);
  EXPECT_EQ(s.pop(), 2);
  EXPECT_EQ(s.pop(), 1);
  EXPECT_THROW(s.pop(), ProtocolError);
}

TEST(ModelVector, ReadWriteAndBounds) {
  FixedVector<int> v(4, 9);
  EXPECT_EQ(v.read(0), 9);
  v.write(2, 42);
  EXPECT_EQ(v.read(2), 42);
  EXPECT_THROW((void)v.read(4), ProtocolError);
  EXPECT_THROW(v.write(5, 0), ProtocolError);
}

TEST(ModelAssoc, InsertLookupRemove) {
  AssocArray<int, int> a(2);
  EXPECT_FALSE(a.insert(1, 10));
  EXPECT_TRUE(a.insert(1, 11));  // overwrite
  EXPECT_EQ(a.lookup(1).value(), 11);
  EXPECT_FALSE(a.lookup(2).has_value());
  a.insert(2, 20);
  EXPECT_TRUE(a.full());
  EXPECT_THROW(a.insert(3, 30), ProtocolError);
  EXPECT_TRUE(a.remove(1));
  EXPECT_FALSE(a.remove(1));
}

TEST(ModelAlgorithms, CopyTransformReduce) {
  BoundedQueue<Word> src(8), dst(8);
  for (Word v : {1, 2, 3, 4}) src.push(v);
  transform_n(src, dst, 4, [](Word v) { return v * 2; });
  EXPECT_EQ(dst.pop(), 2u);
  EXPECT_EQ(dst.pop(), 4u);

  BoundedQueue<Word> src2(8);
  for (Word v : {5, 6, 7}) src2.push(v);
  EXPECT_EQ(reduce_n(src2, 3, Word{0},
                     [](Word a, Word b) { return a + b; }),
            18u);
}

TEST(ModelBlur, FlatImageInvariant) {
  std::vector<Word> img(7 * 5, 200);
  const auto out = blur3x3(img, 7, 5, 8);
  ASSERT_EQ(out.size(), 5u * 3u);
  for (Word p : out) EXPECT_EQ(p, 200u);
}

TEST(ModelBlur, KernelSumsTo16) {
  // An impulse of 16k spreads exactly the kernel weights times k.
  std::vector<Word> img(5 * 5, 0);
  img[2 * 5 + 2] = 16;
  const auto out = blur3x3(img, 5, 5, 8);
  // 3x3 output, centred on the impulse.
  const std::vector<Word> expect{1, 2, 1, 2, 4, 2, 1, 2, 1};
  EXPECT_EQ(out, expect);
}

TEST(ModelBlur, LinearityProperty) {
  // blur(a + b) == blur(a) + blur(b) when no truncation occurs
  // (divisible sums): use multiples of 16 below overflow.
  std::mt19937 rng(5);
  std::vector<Word> a(6 * 6), b(6 * 6);
  for (auto& p : a) p = (rng() % 4) * 16;
  for (auto& p : b) p = (rng() % 4) * 16;
  std::vector<Word> ab(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) ab[i] = a[i] + b[i];
  const auto ba = blur3x3(a, 6, 6, 8);
  const auto bb = blur3x3(b, 6, 6, 8);
  const auto bab = blur3x3(ab, 6, 6, 8);
  for (std::size_t i = 0; i < bab.size(); ++i)
    EXPECT_EQ(bab[i], ba[i] + bb[i]) << i;
}

TEST(ModelBlur, ShiftInvarianceProperty) {
  // Blurring a horizontally shifted image shifts the blurred output.
  std::mt19937 rng(6);
  constexpr int kW = 10, kH = 6;
  std::vector<Word> img(kW * kH);
  for (auto& p : img) p = rng() % 256;
  std::vector<Word> shifted(kW * kH, 0);
  for (int y = 0; y < kH; ++y)
    for (int x = 1; x < kW; ++x)
      shifted[static_cast<std::size_t>(y * kW + x)] =
          img[static_cast<std::size_t>(y * kW + x - 1)];
  const auto b1 = blur3x3(img, kW, kH, 8);
  const auto b2 = blur3x3(shifted, kW, kH, 8);
  const int ow = kW - 2;
  for (int y = 0; y < kH - 2; ++y)
    for (int x = 1; x < ow; ++x)
      EXPECT_EQ(b2[static_cast<std::size_t>(y * ow + x)],
                b1[static_cast<std::size_t>(y * ow + x - 1)])
          << x << "," << y;
}

// -------------------------------------------------------- labelling

TEST(ModelLabel, SingleComponent) {
  // 3x3 block of foreground in a 5x5 image.
  std::vector<Word> img(25, 0);
  for (int y = 1; y <= 3; ++y)
    for (int x = 1; x <= 3; ++x) img[static_cast<std::size_t>(y * 5 + x)] = 1;
  std::size_t n = 0;
  const auto l = label4(img, 5, 5, &n);
  EXPECT_EQ(n, 1u);
  for (int i = 0; i < 25; ++i)
    EXPECT_EQ(l[static_cast<std::size_t>(i)], img[static_cast<std::size_t>(i)]);
}

TEST(ModelLabel, DiagonalPixelsAreSeparateUnder4Connectivity) {
  // Checkerboard: every foreground pixel is its own component.
  std::vector<Word> img{1, 0, 1,
                        0, 1, 0,
                        1, 0, 1};
  std::size_t n = 0;
  const auto l = label4(img, 3, 3, &n);
  EXPECT_EQ(n, 5u);
  // All labels distinct.
  std::set<Word> seen;
  for (Word v : l) {
    if (v != 0) {
      EXPECT_TRUE(seen.insert(v).second);
    }
  }
}

TEST(ModelLabel, UShapeMergesThroughEquivalence) {
  // A 'U': two vertical arms joined at the bottom — the classic case
  // that forces a label equivalence in the raster pass.
  std::vector<Word> img{1, 0, 1,
                        1, 0, 1,
                        1, 1, 1};
  std::size_t n = 0;
  const auto l = label4(img, 3, 3, &n);
  EXPECT_EQ(n, 1u);
  for (std::size_t i = 0; i < img.size(); ++i)
    EXPECT_EQ(l[i], img[i]);  // single component labelled 1
}

TEST(ModelLabel, WShapeNeedsChainedEquivalences) {
  // Three arms joined at the bottom: two merges onto one root.
  std::vector<Word> img{1, 0, 1, 0, 1,
                        1, 0, 1, 0, 1,
                        1, 1, 1, 1, 1};
  std::size_t n = 0;
  const auto l = label4(img, 5, 3, &n);
  EXPECT_EQ(n, 1u);
  (void)l;
}

TEST(ModelLabel, TwoComponentsKeepOrder) {
  std::vector<Word> img{1, 1, 0, 1, 1,
                        1, 1, 0, 1, 1};
  std::size_t n = 0;
  const auto l = label4(img, 5, 2, &n);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(l[0], 1u);
  EXPECT_EQ(l[3], 2u);
}

TEST(ModelLabel, RandomImagesComponentCountMatchesFloodFill) {
  // Property: label4's component count equals an independent BFS
  // flood-fill count on random binary images.
  std::mt19937 rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const int w = 12, h = 9;
    std::vector<Word> img(static_cast<std::size_t>(w * h));
    for (auto& p : img) p = rng() % 3 == 0 ? 1 : 0;

    std::size_t n_label = 0;
    (void)label4(img, w, h, &n_label);

    // Independent flood fill.
    std::vector<bool> vis(img.size(), false);
    std::size_t n_bfs = 0;
    for (int start = 0; start < w * h; ++start) {
      const auto s = static_cast<std::size_t>(start);
      if (img[s] == 0 || vis[s]) continue;
      ++n_bfs;
      std::vector<int> stack{start};
      vis[s] = true;
      while (!stack.empty()) {
        const int cur = stack.back();
        stack.pop_back();
        const int cx = cur % w, cy = cur / w;
        const int nbs[4][2] = {{cx - 1, cy}, {cx + 1, cy},
                               {cx, cy - 1}, {cx, cy + 1}};
        for (const auto& nb : nbs) {
          if (nb[0] < 0 || nb[0] >= w || nb[1] < 0 || nb[1] >= h) continue;
          const auto ni = static_cast<std::size_t>(nb[1] * w + nb[0]);
          if (img[ni] != 0 && !vis[ni]) {
            vis[ni] = true;
            stack.push_back(nb[1] * w + nb[0]);
          }
        }
      }
    }
    EXPECT_EQ(n_label, n_bfs) << "trial " << trial;
  }
}

TEST(ModelLabel, LabelsArePartitionedByConnectivity) {
  // Property: two 4-adjacent foreground pixels always share a label.
  std::mt19937 rng(23);
  const int w = 10, h = 10;
  std::vector<Word> img(100);
  for (auto& p : img) p = rng() % 2;
  const auto l = label4(img, w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const auto i = static_cast<std::size_t>(y * w + x);
      if (img[i] == 0) continue;
      if (x + 1 < w && img[i + 1] != 0) {
        EXPECT_EQ(l[i], l[i + 1]);
      }
      if (y + 1 < h && img[i + static_cast<std::size_t>(w)] != 0) {
        EXPECT_EQ(l[i], l[i + static_cast<std::size_t>(w)]);
      }
    }
  }
}

}  // namespace
}  // namespace hwpat::core::model
