// Tests of the multi-clock-domain subsystem: the tick-ordered edge
// scheduler and per-domain activation lists, the dual-clock async FIFO
// (CDC) device across a sweep of clock ratios, the dual-clock saa2vga
// design, and the multi-domain diagnostics — each differentially
// against the full-sweep reference kernel where waveforms are involved.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "designs/design.hpp"
#include "designs/saa2vga_triclk.hpp"
#include "devices/async_fifo.hpp"
#include "hdl/emit.hpp"
#include "meta/codegen.hpp"
#include "rtl/clock.hpp"
#include "rtl/simulator.hpp"
#include "tb_util.hpp"

namespace hwpat {
namespace {

using rtl::Bit;
using rtl::Bus;
using rtl::ClockDomain;
using rtl::Module;
using rtl::Simulator;

constexpr std::uint64_t kMaxCycles = 2'000'000;

using tb::slurp_and_remove;

// ------------------------------------------------------------------
// ClockDomain / Options validation at elaboration
// ------------------------------------------------------------------

TEST(ClockDomainValidation, RejectsNonPositivePeriod) {
  EXPECT_THROW(ClockDomain("bad", 0), Error);
  EXPECT_THROW(ClockDomain("bad", -3), Error);
}

TEST(ClockDomainValidation, RejectsNegativePhase) {
  EXPECT_THROW(ClockDomain("bad", 2, -1), Error);
}

TEST(ClockDomainValidation, RejectsPhaseAtOrBeyondPeriod) {
  // phase k*period + r is the same edge train as phase r: insisting on
  // the canonical spelling keeps a phase readable as a sub-period
  // offset (and progress_report() diagnostics unambiguous).
  EXPECT_THROW(ClockDomain("bad", 2, 2), Error);
  EXPECT_THROW(ClockDomain("bad", 3, 7), Error);
  ClockDomain ok("ok", 3, 2);  // largest legal phase
  EXPECT_EQ(ok.phase(), 2u);
}


TEST(ClockDomainValidation, RejectsNonPositiveTickDuration) {
  struct Top : Module {
    Top() : Module(nullptr, "top") {}
  } top;
  EXPECT_THROW(Simulator(top, {.tick_ps = 0}), Error);
  EXPECT_THROW(Simulator(top, {.tick_ps = -5}), Error);
}

// ------------------------------------------------------------------
// Tick scheduler + activation lists
// ------------------------------------------------------------------

/// A register that counts its own on_clock() invocations — the direct
/// witness for "modules outside a domain are never visited on its
/// edges".
struct EdgeCounter : Module {
  Bus value{*this, "value", 16};
  int clock_calls = 0;

  EdgeCounter(Module* parent, std::string name)
      : Module(parent, std::move(name)) {}
  void on_clock() override {
    ++clock_calls;
    value.write(value.read() + 1);
  }
  void on_reset() override { clock_calls = 0; }
  void declare_state() override { register_seq(value); }
};

/// Two counters in domains of period 2 and 3 under a period-2 top.
struct TwoDomainTop : Module {
  ClockDomain a{"a", 2};
  ClockDomain b{"b", 3};
  EdgeCounter ca{this, "ca"};
  EdgeCounter cb{this, "cb"};

  TwoDomainTop() : Module(nullptr, "top") {
    set_clock_domain(&a);  // top + ca inherit a
    cb.set_clock_domain(&b);
  }
  void declare_state() override { declare_seq_state(); }
};

TEST(TickScheduler, ActivationListsVisitOnlyTheFiringDomain) {
  for (const bool full_sweep : {false, true}) {
    TwoDomainTop top;
    Simulator sim(top, {.full_sweep = full_sweep});
    sim.reset();
    // Edges up to tick 12: a at 2,4,6,8,10,12 (6); b at 3,6,9,12 (4);
    // distinct ticks 2,3,4,6,8,9,10,12 = 8 edge events.
    while (sim.now() < 12) sim.step();
    EXPECT_EQ(sim.cycle(), 8u);
    EXPECT_EQ(top.ca.clock_calls, 6);
    EXPECT_EQ(top.cb.clock_calls, 4);
    EXPECT_EQ(top.ca.value.read(), 6u);
    EXPECT_EQ(top.cb.value.read(), 4u);
    EXPECT_EQ(sim.domain_count(), 2u);
    EXPECT_EQ(sim.domain_info(0).name, "a");
    EXPECT_EQ(sim.domain_info(1).name, "b");
    EXPECT_EQ(sim.domain_info(0).modules, 2u);  // top + ca
    EXPECT_EQ(sim.domain_info(1).modules, 1u);  // cb
    ASSERT_EQ(sim.stats().domain_edges.size(), 2u);
    EXPECT_EQ(sim.stats().domain_edges[0], 6u);
    EXPECT_EQ(sim.stats().domain_edges[1], 4u);
    EXPECT_EQ(sim.stats().edges, 10u);
    // Per a-edge 1 of 3 modules is outside the list, per b-edge 2 of 3.
    EXPECT_EQ(sim.stats().act_skips, 6u * 1 + 4u * 2);
  }
}

TEST(ClockDomainValidation, RejectsDomainAssignmentWhileBound) {
  // Domains are resolved once, at elaboration: reassigning under a
  // live simulator would desynchronize the activation lists and the
  // settle partitions.
  TwoDomainTop top;
  {
    Simulator sim(top);
    EXPECT_THROW(top.cb.set_clock_domain(&top.a), Error);
    EXPECT_THROW(top.set_clock_domain(nullptr), Error);
  }
  // Unbound again: reassignment is legal and takes effect.
  top.cb.set_clock_domain(&top.a);
  {
    Simulator sim2(top);
    EXPECT_EQ(sim2.domain_count(), 1u);
  }
  top.cb.set_clock_domain(&top.b);  // restore
}

TEST(TickScheduler, HeapOrdersManyCoprimeDomains) {
  // Five domains with pairwise-coprime-ish periods: the tick heap must
  // produce exactly the merged edge trains, in order, with ties
  // resolved as one event.  The reference sequence is computed the
  // slow way here, in the test.
  struct Top : Module {
    ClockDomain d2{"d2", 2}, d3{"d3", 3}, d5{"d5", 5}, d7{"d7", 7},
        d11{"d11", 11};
    EdgeCounter c2{this, "c2"}, c3{this, "c3"}, c5{this, "c5"},
        c7{this, "c7"}, c11{this, "c11"};
    Top() : Module(nullptr, "top") {
      set_clock_domain(&d2);
      c3.set_clock_domain(&d3);
      c5.set_clock_domain(&d5);
      c7.set_clock_domain(&d7);
      c11.set_clock_domain(&d11);
    }
    void declare_state() override { declare_seq_state(); }
  } top;
  Simulator sim(top);
  sim.reset();
  const std::uint64_t periods[] = {2, 3, 5, 7, 11};
  std::uint64_t expect_edges = 0;
  std::uint64_t last = 0;
  for (int ev = 0; ev < 200; ++ev) {
    // Reference: the next tick after `last` divisible by any period.
    std::uint64_t t = last + 1;
    for (;; ++t) {
      bool any = false;
      for (const std::uint64_t p : periods) any |= (t % p == 0);
      if (any) break;
    }
    for (const std::uint64_t p : periods) expect_edges += (t % p == 0);
    sim.step();
    ASSERT_EQ(sim.now(), t) << "event " << ev;
    last = t;
  }
  EXPECT_EQ(sim.stats().edges, expect_edges);
  EXPECT_EQ(top.c2.value.read(), last / 2);
  EXPECT_EQ(top.c3.value.read(), last / 3);
  EXPECT_EQ(top.c5.value.read(), last / 5);
  EXPECT_EQ(top.c7.value.read(), last / 7);
  EXPECT_EQ(top.c11.value.read(), last / 11);
}

TEST(TickScheduler, PhaseOffsetsShiftEdges) {
  TwoDomainTop top;
  top.a = ClockDomain("a", 2, 1);  // edges at 3, 5, 7, ...
  Simulator sim(top);
  sim.reset();
  sim.step();  // first event: b at tick 3?  a also at 3: simultaneous.
  EXPECT_EQ(sim.now(), 3u);
  EXPECT_EQ(top.ca.clock_calls, 1);
  EXPECT_EQ(top.cb.clock_calls, 1);
  sim.step();  // a at 5
  EXPECT_EQ(sim.now(), 5u);
  EXPECT_EQ(top.ca.clock_calls, 2);
  EXPECT_EQ(top.cb.clock_calls, 1);
}

TEST(TickScheduler, SingleDomainDegeneratesToOneEdgePerStep) {
  struct Top : Module {
    EdgeCounter c{this, "c"};
    Top() : Module(nullptr, "top") {}
    void declare_state() override { declare_seq_state(); }
  } top;
  Simulator sim(top);
  sim.reset();
  sim.step(5);
  EXPECT_EQ(sim.cycle(), 5u);
  EXPECT_EQ(sim.now(), 5u);  // default domain: period 1, phase 0
  EXPECT_EQ(sim.domain_count(), 1u);
  EXPECT_EQ(sim.domain_info(0).name, "clk");
  EXPECT_EQ(sim.stats().edges, 5u);
  EXPECT_EQ(sim.stats().act_skips, 0u);
  ASSERT_EQ(sim.stats().domain_edges.size(), 1u);
  EXPECT_EQ(sim.stats().domain_edges[0], 5u);
}

TEST(TickScheduler, RunTimeoutProgressReportsPerDomainEdges) {
  TwoDomainTop top;
  Simulator sim(top);
  sim.reset();
  const rtl::RunStatus st =
      sim.run([] { return false; }, 8);  // exactly to tick 12
  EXPECT_EQ(st.result, rtl::RunResult::Timeout);
  {
    const std::string msg = sim.progress_report();
    EXPECT_NE(msg.find("a=6 (period 2)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("b=4 (period 3)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cycle 8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tick 12"), std::string::npos) << msg;
  }
}

// ------------------------------------------------------------------
// VCD timescale
// ------------------------------------------------------------------

TEST(VcdTimescale, DerivedFromTickDurationSpecLegally) {
  // IEEE 1364 allows only 1, 10 or 100 of a unit in $timescale: the
  // writer must pick the largest legal quantum and scale timestamps by
  // the remainder, keeping the trace time-correct for any tick.
  struct Top : Module {
    Bus x{*this, "x", 8};
    Top() : Module(nullptr, "top") {}
    void on_clock() override { x.write(x.read() + 1); }
    void declare_state() override { register_seq(x); }
  };
  const struct {
    std::int64_t tick_ps;
    const char* expect;
    const char* stamp2;  ///< timestamp of the 2nd step's sample
  } cases[] = {{1000, "$timescale 1ns $end", "#2"},
               {40'000, "$timescale 10ns $end", "#8"},
               {1'000'000, "$timescale 1us $end", "#2"},
               {500, "$timescale 100ps $end", "#10"},
               {30'000'000, "$timescale 10us $end", "#6"}};
  for (const auto& c : cases) {
    Top top;
    {
      Simulator sim(top, {.tick_ps = c.tick_ps});
      sim.open_vcd("ts_test.vcd");
      sim.reset();
      sim.step(2);
    }  // destroying the simulator flushes the VCD stream
    const std::string vcd = slurp_and_remove("ts_test.vcd");
    EXPECT_NE(vcd.find(c.expect), std::string::npos)
        << "tick_ps=" << c.tick_ps << "\n" << vcd;
    EXPECT_NE(vcd.find(std::string(c.stamp2) + "\n"), std::string::npos)
        << "tick_ps=" << c.tick_ps << ": scaled timestamp missing\n"
        << vcd;
  }
}

// ------------------------------------------------------------------
// Async FIFO: clock-ratio sweep, no loss/duplication, kernel parity
// ------------------------------------------------------------------

/// Deterministic producer/consumer pair around one AsyncFifo.  The
/// producer (write domain) pushes a known sequence with irregular gaps;
/// the consumer (read domain) pops with its own stall pattern.  Both
/// respect the conservative full/empty flags, so the transfer must be
/// lossless at any clock ratio.
struct CdcTb : Module {
  static constexpr int kCount = 200;

  ClockDomain wr_dom;
  ClockDomain rd_dom;
  Bit wr_en{*this, "wr_en"}, rd_en{*this, "rd_en"};
  Bit full{*this, "full"}, empty{*this, "empty"};
  Bus wr_data{*this, "wr_data", 8}, rd_data{*this, "rd_data", 8};
  devices::AsyncFifo fifo;

  struct Producer : Module {
    CdcTb& tb;
    int sent = 0, t = 0;
    explicit Producer(CdcTb* parent)
        : Module(parent, "producer"), tb(*parent) {}
    void eval_comb() override {
      const bool want = sent < kCount && (t % 5) != 3;  // irregular gaps
      tb.wr_en.write(want && !tb.full.read());
      tb.wr_data.write(static_cast<Word>((0x30 + sent * 7) & 0xFF));
    }
    void on_clock() override {
      ++t;
      if (tb.wr_en.read()) ++sent;
      seq_touch();
    }
    void on_reset() override { sent = t = 0; }
    void declare_state() override { declare_seq_state(); }
  } producer{this};

  struct Consumer : Module {
    CdcTb& tb;
    std::vector<Word> got;
    int t = 0;
    explicit Consumer(CdcTb* parent)
        : Module(parent, "consumer"), tb(*parent) {}
    void eval_comb() override {
      tb.rd_en.write(!tb.empty.read() && (t % 7) != 5);  // stall pattern
    }
    void on_clock() override {
      ++t;
      if (tb.rd_en.read()) got.push_back(tb.rd_data.read());
      seq_touch();
    }
    void on_reset() override {
      t = 0;
      got.clear();
    }
    void declare_state() override { declare_seq_state(); }
  } consumer{this};

  CdcTb(std::int64_t wr_period, std::int64_t rd_period)
      : Module(nullptr, "cdc_tb"),
        wr_dom("wr", wr_period),
        rd_dom("rd", rd_period),
        fifo(this, "fifo", {.width = 8, .depth = 8},
             devices::AsyncFifoPorts{wr_en, wr_data, full, rd_en, rd_data,
                                     empty},
             &wr_dom, &rd_dom) {
    set_clock_domain(&rd_dom);  // comb-only top; any domain works
    producer.set_clock_domain(&wr_dom);
    consumer.set_clock_domain(&rd_dom);
  }
  void declare_state() override { declare_seq_state(); }
};

void expect_cdc_lossless(std::int64_t wr_period, std::int64_t rd_period) {
  const std::string label = "cdc_" + std::to_string(wr_period) + "to" +
                            std::to_string(rd_period);
  struct Out {
    std::vector<Word> got;
    std::string vcd;
    Simulator::Stats stats;
  };
  auto run = [&](bool full_sweep) {
    CdcTb tb(wr_period, rd_period);
    const std::string path = label + (full_sweep ? "_ref.vcd" : "_evt.vcd");
    Out out;
    {
      Simulator sim(tb, {.full_sweep = full_sweep});
      sim.open_vcd(path);
      sim.reset();
      EXPECT_TRUE(sim.run(
                         [&] {
                           return tb.consumer.got.size() ==
                                  static_cast<std::size_t>(CdcTb::kCount);
                         },
                         kMaxCycles)
                      .ok())
          << label << ": " << sim.progress_report();
      EXPECT_EQ(tb.fifo.size(), 0) << label;
      out.stats = sim.stats();
    }  // destroying the simulator flushes the VCD stream
    out.got = tb.consumer.got;
    out.vcd = slurp_and_remove(path);
    return out;
  };
  const Out evt = run(false);
  const Out ref = run(true);

  // No loss, no duplication, no reordering: the exact sent sequence.
  ASSERT_EQ(evt.got.size(), static_cast<std::size_t>(CdcTb::kCount))
      << label;
  for (int i = 0; i < CdcTb::kCount; ++i)
    ASSERT_EQ(evt.got[static_cast<std::size_t>(i)],
              static_cast<Word>((0x30 + i * 7) & 0xFF))
        << label << ": element " << i;
  EXPECT_EQ(evt.got, ref.got) << label;
  EXPECT_EQ(evt.vcd, ref.vcd) << label << ": VCD traces differ";
  EXPECT_LT(evt.stats.evals, ref.stats.evals) << label;
  EXPECT_EQ(evt.stats.edges, ref.stats.edges) << label;
  EXPECT_EQ(evt.stats.domain_edges, ref.stats.domain_edges) << label;
}

TEST(AsyncFifoCdc, LosslessRatio1to1) { expect_cdc_lossless(1, 1); }
TEST(AsyncFifoCdc, LosslessRatio1to3) { expect_cdc_lossless(1, 3); }
TEST(AsyncFifoCdc, LosslessRatio3to1) { expect_cdc_lossless(3, 1); }
TEST(AsyncFifoCdc, LosslessCoprimeRatio3to7) { expect_cdc_lossless(3, 7); }

TEST(AsyncFifoCdc, FlagLatencyIsConservative) {
  // After one push, empty must stay high on the read side until the
  // write pointer has crossed the 2-flop synchronizer — and never show
  // data early.
  CdcTb tb(1, 1);
  Simulator sim(tb);
  sim.reset();
  EXPECT_TRUE(tb.empty.read());
  EXPECT_FALSE(tb.full.read());
  sim.step();  // first push lands at this edge
  EXPECT_TRUE(tb.empty.read()) << "one sync flop: still hidden";
  sim.step();
  EXPECT_TRUE(tb.empty.read()) << "two sync flops: still hidden";
  sim.step();
  EXPECT_FALSE(tb.empty.read()) << "pointer crossed: data visible";
}

TEST(AsyncFifoCdc, StrictModeRaisesOnMisuse) {
  struct RawTb : Module {
    Bit wr_en{*this, "wr_en"}, rd_en{*this, "rd_en"};
    Bit full{*this, "full"}, empty{*this, "empty"};
    Bus wr_data{*this, "wr_data", 8}, rd_data{*this, "rd_data", 8};
    devices::AsyncFifo fifo;
    RawTb()
        : Module(nullptr, "raw_tb"),
          fifo(this, "fifo", {.width = 8, .depth = 2},
               devices::AsyncFifoPorts{wr_en, wr_data, full, rd_en,
                                       rd_data, empty}) {}
    void declare_state() override { declare_seq_state(); }
  };
  {
    RawTb tb;
    Simulator sim(tb);
    sim.reset();
    tb.rd_en.write(true);  // read while empty
    sim.settle();
    EXPECT_THROW(sim.step(), ProtocolError);
  }
  {
    RawTb tb;
    Simulator sim(tb);
    sim.reset();
    tb.wr_en.write(true);  // push until over depth: write while full
    sim.settle();
    EXPECT_THROW(sim.step(8), ProtocolError);
  }
}

// ------------------------------------------------------------------
// Dual-clock saa2vga design
// ------------------------------------------------------------------

void expect_dualclk_design(std::int64_t pix_period,
                           std::int64_t mem_period) {
  const std::string label = "dualclk_" + std::to_string(pix_period) +
                            "to" + std::to_string(mem_period);
  const designs::Saa2VgaDualClkConfig cfg{.width = 16, .height = 12,
                                          .cdc_depth = 8, .frames = 2,
                                          .pix_period = pix_period,
                                          .mem_period = mem_period};
  struct Out {
    std::uint64_t cycles = 0;
    std::vector<video::Frame> frames;
    std::string vcd;
    Simulator::Stats stats;
  };
  auto run = [&](bool full_sweep) {
    auto d = designs::make_saa2vga_dualclk(cfg);
    const std::string path = label + (full_sweep ? "_ref.vcd" : "_evt.vcd");
    Out out;
    {
      Simulator sim(*d, {.full_sweep = full_sweep});
      sim.open_vcd(path);
      sim.reset();
      EXPECT_TRUE(sim.run([&] { return d->finished(); }, kMaxCycles).ok())
          << label << ": " << sim.progress_report();
      out.cycles = sim.cycle();
      out.stats = sim.stats();
    }  // destroying the simulator flushes the VCD stream
    out.frames = d->sink().frames();
    out.vcd = slurp_and_remove(path);
    return out;
  };
  const Out evt = run(false);
  const Out ref = run(true);

  // Zero data loss at this clock ratio: the transported frames are
  // pixel-exact copies of the camera input.
  const auto input = designs::camera_frames(cfg.width, cfg.height,
                                            cfg.frames, cfg.pattern_seed);
  EXPECT_EQ(evt.frames, input) << label;
  // Kernel parity, as for every single-clock design.
  EXPECT_EQ(evt.cycles, ref.cycles) << label;
  EXPECT_EQ(evt.frames, ref.frames) << label;
  EXPECT_EQ(evt.vcd, ref.vcd) << label << ": VCD traces differ";
  EXPECT_LT(evt.stats.evals, ref.stats.evals) << label;
  EXPECT_EQ(evt.stats.domain_edges, ref.stats.domain_edges) << label;
  // The activation lists must actually shrink per-edge on_clock work.
  EXPECT_GT(evt.stats.act_skips, 0u) << label;
  EXPECT_GT(evt.stats.seq_skips, 0u) << label;
}

TEST(DualClkDesign, PixelEqualsMemoryClock) { expect_dualclk_design(1, 1); }
TEST(DualClkDesign, MemoryThreeTimesFaster) { expect_dualclk_design(3, 1); }
TEST(DualClkDesign, PixelThreeTimesFaster) { expect_dualclk_design(1, 3); }
TEST(DualClkDesign, CoprimeRatio) { expect_dualclk_design(3, 7); }

// ------------------------------------------------------------------
// Per-domain settle partitions & domain affinity
// ------------------------------------------------------------------

TEST(SettlePartitions, ModuleAndSignalAffinityResolvedAtElaboration) {
  TwoDomainTop top;
  EXPECT_EQ(top.partition(), -1);  // unbound: no affinity
  {
    Simulator sim(top);
    // Partitions are indexed like domain_info(): a == 0, b == 1.
    EXPECT_EQ(top.partition(), 0);
    EXPECT_EQ(top.ca.partition(), 0);
    EXPECT_EQ(top.cb.partition(), 1);
    // A declared register signal carries its *writer's* partition.
    EXPECT_EQ(top.ca.value.partition(), 0);
    EXPECT_EQ(top.cb.value.partition(), 1);
  }
  // Unbinding clears the affinity, like the dense ids.
  EXPECT_EQ(top.partition(), -1);
  EXPECT_EQ(top.cb.value.partition(), -1);
}

/// Comb logic hanging off an EdgeCounter — gives each partition
/// something to actually settle.
struct CombFollower : Module {
  Bus out{*this, "out", 16};
  const Bus& in;
  CombFollower(Module* parent, std::string name, const Bus& i)
      : Module(parent, std::move(name)), in(i) {}
  void eval_comb() override { out.write(in.read() + 1); }
  void declare_state() override { declare_seq_state(); }
};

TEST(SettlePartitions, QuietDomainIsNotSettled) {
  // Two independent counter+follower pairs in domains of period 2 and
  // 3: an edge of one domain must never settle the other's partition.
  struct Top : Module {
    ClockDomain a{"a", 2};
    ClockDomain b{"b", 3};
    EdgeCounter ca{this, "ca"};
    EdgeCounter cb{this, "cb"};
    CombFollower fa{this, "fa", ca.value};
    CombFollower fb{this, "fb", cb.value};
    Top() : Module(nullptr, "top") {
      set_clock_domain(&a);
      cb.set_clock_domain(&b);
      fb.set_clock_domain(&b);
    }
    void declare_state() override { declare_seq_state(); }
  } top;
  Simulator sim(top);
  sim.reset();
  sim.reset_stats();
  while (sim.now() < 12) sim.step();  // 8 events at ticks 2,3,4,6,8,9,10,12
  const auto& st = sim.stats();
  // Post-edge settles touch exactly the firing partitions: four a-only
  // events, two b-only events, two simultaneous ones; every pre-edge
  // settle is fully quiet.  The accounting is deterministic down to
  // the exact slot counts.
  EXPECT_EQ(st.partition_settles, 4 * 1 + 2 * 1 + 2 * 2u);
  EXPECT_EQ(st.partition_skips, 2 * 2 * st.steps - st.partition_settles);
  EXPECT_EQ(top.ca.value.read(), 6u);
  EXPECT_EQ(top.cb.value.read(), 4u);
  EXPECT_EQ(top.fa.out.read(), 7u);
  EXPECT_EQ(top.fb.out.read(), 5u);
}

TEST(SettlePartitions, FullSweepKeepsPartitionCountersAtZero) {
  TwoDomainTop top;
  Simulator sim(top, {.full_sweep = true});
  sim.reset();
  sim.step(6);
  EXPECT_EQ(sim.stats().partition_settles, 0u);
  EXPECT_EQ(sim.stats().partition_skips, 0u);
}

TEST(SettlePartitions, CdcMarksAreExactlyTheGrayPointers) {
  // The CDC-arc contract: the async FIFO's gray pointers are the only
  // signals declared as cross-partition arcs — nothing else in a
  // shipped CDC design is marked, and both pointers of every FIFO are.
  auto d = designs::make_saa2vga_triclk(
      {.width = 8, .height = 6, .cdc_depth = 8, .frames = 1});
  std::vector<std::string> marked;
  d->visit([&](const rtl::Module& m) {
    for (const rtl::SignalBase* s : m.signals()) {
      if (s->cdc_cross()) marked.push_back(s->full_name());
      // Conversely: every marked signal is a gray pointer.
      EXPECT_EQ(s->cdc_cross(),
                s->name() == "wptr_gray" || s->name() == "rptr_gray")
          << s->full_name();
    }
  });
  EXPECT_EQ(marked.size(), 4u);  // 2 FIFOs x 2 pointers
}

// ------------------------------------------------------------------
// Tri-clock saa2vga design (camera + memory + pixel)
// ------------------------------------------------------------------

void expect_triclk_design(const designs::Saa2VgaTriClkConfig& cfg,
                          const std::string& label) {
  struct Out {
    std::uint64_t cycles = 0;
    std::vector<video::Frame> frames;
    std::string vcd;
    Simulator::Stats stats;
  };
  auto run = [&](bool full_sweep) {
    auto d = designs::make_saa2vga_triclk(cfg);
    const std::string path = label + (full_sweep ? "_ref.vcd" : "_evt.vcd");
    Out out;
    {
      Simulator sim(*d, {.full_sweep = full_sweep});
      sim.open_vcd(path);
      sim.reset();
      // finished() flips on a pixel-clock edge (the vga collects the
      // last pixel strictly after the decoder and copy loop are done),
      // so the domain-filtered run() can skip the predicate on
      // cam/mem-only events.  Domain 0 is pix: the top inherits it.
      EXPECT_TRUE(
          sim.run([&] { return d->finished(); }, kMaxCycles, 0).ok())
          << sim.progress_report();
      out.cycles = sim.cycle();
      out.stats = sim.stats();
    }  // destroying the simulator flushes the VCD stream
    out.frames = d->sink().frames();
    out.vcd = slurp_and_remove(path);
    return out;
  };
  const Out evt = run(false);
  const Out ref = run(true);

  // Zero data loss through BOTH clock-domain crossings.
  const auto input = designs::camera_frames(cfg.width, cfg.height,
                                            cfg.frames, cfg.pattern_seed);
  EXPECT_EQ(evt.frames, input) << label;
  // Kernel parity, byte-exact.
  EXPECT_EQ(evt.cycles, ref.cycles) << label;
  EXPECT_EQ(evt.frames, ref.frames) << label;
  EXPECT_EQ(evt.vcd, ref.vcd) << label << ": VCD traces differ";
  EXPECT_LT(evt.stats.evals, ref.stats.evals) << label;
  EXPECT_EQ(evt.stats.domain_edges, ref.stats.domain_edges) << label;
  ASSERT_EQ(evt.stats.domain_edges.size(), 3u) << label;
  // All three schedulers' skip machinery must be engaged.
  EXPECT_GT(evt.stats.act_skips, 0u) << label;
  EXPECT_GT(evt.stats.seq_skips, 0u) << label;
  EXPECT_GT(evt.stats.partition_settles, 0u) << label;
  EXPECT_GT(evt.stats.partition_skips, 0u) << label;
}

TEST(TriClkDesign, LosslessAtCoprimeThreeWayRatio) {
  expect_triclk_design({.width = 16, .height = 12, .cdc_depth = 8,
                        .frames = 2},
                       "triclk_5to2to3");  // default 5:2:3, coprime
}

TEST(TriClkDesign, LosslessWithAllClocksEqual) {
  expect_triclk_design({.width = 16, .height = 12, .cdc_depth = 8,
                        .frames = 2, .cam_period = 1, .mem_period = 1,
                        .pix_period = 1},
                       "triclk_1to1to1");
}

TEST(TriClkDesign, LosslessWithPhaseOffsets) {
  expect_triclk_design({.width = 16, .height = 12, .cdc_depth = 8,
                        .frames = 2, .cam_period = 4, .mem_period = 2,
                        .pix_period = 3, .cam_phase = 3, .mem_phase = 1,
                        .pix_phase = 2},
                       "triclk_phased");
}

TEST(TriClkDesign, FullyDeclaredThreeDomainsAndAffinity) {
  auto d = designs::make_saa2vga_triclk(
      {.width = 16, .height = 12, .cdc_depth = 8, .frames = 1});
  Simulator sim(*d);
  d->visit([&](const rtl::Module& m) {
    EXPECT_FALSE(m.opaque_state())
        << "module '" << m.full_name()
        << "' has no sequential-state declaration";
  });
  ASSERT_EQ(sim.domain_count(), 3u);
  EXPECT_EQ(sim.domain_info(0).name, "pix");
  EXPECT_EQ(sim.domain_info(1).name, "cam");
  EXPECT_EQ(sim.domain_info(2).name, "mem");
  // Stage-by-stage domain affinity: decoder on cam, copy loop on mem,
  // vga (and the top glue) on pix.
  d->visit([&](const rtl::Module& m) {
    if (m.name() == "decoder") {
      EXPECT_EQ(m.partition(), 1) << m.full_name();
    }
    if (m.name() == "copy") {
      EXPECT_EQ(m.partition(), 2) << m.full_name();
    }
    if (m.name() == "vga") {
      EXPECT_EQ(m.partition(), 0) << m.full_name();
    }
  });
  sim.reset();
  ASSERT_TRUE(sim.run([&] { return d->finished(); }, kMaxCycles).ok())
      << sim.progress_report();
  EXPECT_GT(sim.stats().seq_skips, 0u);
  EXPECT_GT(sim.stats().partition_skips, 0u);
}

TEST(TriClkDesign, RunTimeoutProgressReportsAllThreeDomainsWithPhases) {
  auto d = designs::make_saa2vga_triclk(
      {.width = 8, .height = 6, .cdc_depth = 8, .frames = 1,
       .cam_period = 5, .mem_period = 2, .pix_period = 3,
       .mem_phase = 1});
  Simulator sim(*d);
  sim.reset();
  const rtl::RunStatus st = sim.run([] { return false; }, 25);
  EXPECT_EQ(st.result, rtl::RunResult::Timeout);
  {
    const std::string msg = sim.progress_report();
    EXPECT_NE(msg.find("pix="), std::string::npos) << msg;
    EXPECT_NE(msg.find("cam="), std::string::npos) << msg;
    EXPECT_NE(msg.find("mem="), std::string::npos) << msg;
    EXPECT_NE(msg.find("(period 5)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("period 2, phase 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cycle 25"), std::string::npos) << msg;
  }
}

// ------------------------------------------------------------------
// Tri-clock capture farm (lanes > 1) and the parallel settle engine
// ------------------------------------------------------------------

TEST(TriClkFarm, LanesAreLosslessAndShareThreeDomains) {
  const designs::Saa2VgaTriClkConfig cfg{.width = 8, .height = 6,
                                         .cdc_depth = 8, .frames = 2,
                                         .lanes = 3};
  designs::Saa2VgaTriClk d(cfg);
  Simulator sim(d);
  // Replicating lanes adds NO domains: still exactly three settle
  // partitions, each carrying three lanes' worth of modules.
  ASSERT_EQ(sim.domain_count(), 3u);
  sim.reset();
  ASSERT_TRUE(sim.run([&] { return d.finished(); }, kMaxCycles, 0).ok())
      << sim.progress_report();
  // Every lane is lossless and carries its own pattern (seed + lane):
  // a crossed wire between lanes would show up as the wrong content.
  for (int i = 0; i < cfg.lanes; ++i) {
    const auto input = designs::camera_frames(
        cfg.width, cfg.height, cfg.frames,
        cfg.pattern_seed + static_cast<unsigned>(i));
    EXPECT_EQ(d.lane_sink(i).frames(), input) << "lane " << i;
  }
  EXPECT_GT(sim.stats().partition_skips, 0u);
}

TEST(TriClkFarm, ParallelSettleIsThreadCountInvariant) {
  const designs::Saa2VgaTriClkConfig cfg{.width = 8, .height = 6,
                                         .cdc_depth = 8, .frames = 2,
                                         .lanes = 3};
  struct Out {
    std::uint64_t cycles = 0;
    Simulator::Stats stats;
    std::vector<video::Frame> frames;
    std::string vcd;
  };
  auto run = [&](int threads) {
    designs::Saa2VgaTriClk d(cfg);
    const std::string path =
        "triclk_farm_t" + std::to_string(threads) + ".vcd";
    Out out;
    {
      Simulator sim(d, {.threads = threads});
      sim.open_vcd(path);
      sim.reset();
      EXPECT_TRUE(
          sim.run([&] { return d.finished(); }, kMaxCycles, 0).ok())
          << sim.progress_report();
      out.cycles = sim.cycle();
      out.stats = sim.stats();
    }
    out.frames = d.sink().frames();
    out.vcd = slurp_and_remove(path);
    return out;
  };
  const Out want = run(0);
  for (const int threads : {1, 2, 3, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const Out got = run(threads);
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.frames, want.frames);
    EXPECT_EQ(got.stats.evals, want.stats.evals);
    EXPECT_EQ(got.stats.commits, want.stats.commits);
    EXPECT_EQ(got.stats.deltas, want.stats.deltas);
    EXPECT_EQ(got.stats.seq_skips, want.stats.seq_skips);
    EXPECT_EQ(got.stats.partition_settles, want.stats.partition_settles);
    EXPECT_EQ(got.stats.partition_skips, want.stats.partition_skips);
    EXPECT_EQ(got.stats.edges, want.stats.edges);
    EXPECT_EQ(got.stats.domain_edges, want.stats.domain_edges);
    EXPECT_EQ(got.vcd, want.vcd) << "VCD bytes differ";
  }
}

// ------------------------------------------------------------------
// Spec / codegen layer for the CDC device kind
// ------------------------------------------------------------------

TEST(AsyncFifoSpec, ValidationRules) {
  meta::ContainerSpec s;
  s.kind = core::ContainerKind::Queue;
  s.device = devices::DeviceKind::AsyncFifoCore;
  s.depth = 16;
  meta::validate(s);  // power-of-two depth, defaulted methods: fine
  // A defaulted method set silently drops size...
  for (meta::Method m : s.effective_methods())
    EXPECT_NE(m, meta::Method::Size);
  // ...but asking for it explicitly is an error, as are non-power-of-2
  // depths and width adaptation across the crossing.
  s.used_methods = {meta::Method::Size};
  EXPECT_THROW(meta::validate(s), SpecError);
  s.used_methods = {meta::Method::Push, meta::Method::Pop};
  s.depth = 12;
  EXPECT_THROW(meta::validate(s), SpecError);
  s.depth = 16;
  s.elem_bits = 24;
  s.bus_bits = 8;
  EXPECT_THROW(meta::validate(s), SpecError);
}

TEST(AsyncFifoSpec, CodegenEmitsTheDualClockCore) {
  // The generated unit carries the CDC machinery itself — gray-coded
  // pointer pairs with 2-flop synchronizers in clocked processes, one
  // per clock domain — rather than renaming the p_* ports of an
  // external macro.
  for (const bool read_side : {true, false}) {
    meta::ContainerSpec s;
    s.name = read_side ? "rbuffer" : "wbuffer";
    s.kind = read_side ? core::ContainerKind::ReadBuffer
                       : core::ContainerKind::WriteBuffer;
    s.device = devices::DeviceKind::AsyncFifoCore;
    s.depth = 16;
    const auto unit = meta::generate_container(s);
    EXPECT_EQ(unit.entity.name,
              std::string(read_side ? "rbuffer" : "wbuffer") +
                  "_async_fifo");
    // Per-domain clocks instead of a single global clk.
    EXPECT_EQ(unit.entity.find_port("clk"), nullptr);
    EXPECT_NE(unit.entity.find_port("wr_clk"), nullptr);
    EXPECT_NE(unit.entity.find_port("rd_clk"), nullptr);
    EXPECT_EQ(unit.entity.find_port("m_size"), nullptr);
    if (read_side) {
      // Platform feed in the write domain, user pop in the read domain.
      EXPECT_NE(unit.entity.find_port("p_write"), nullptr);
      EXPECT_NE(unit.entity.find_port("p_wdata"), nullptr);
      EXPECT_NE(unit.entity.find_port("empty"), nullptr);
      EXPECT_EQ(unit.entity.find_port("p_read"), nullptr);
    } else {
      // User push in the write domain, platform drain in the read one.
      EXPECT_NE(unit.entity.find_port("p_read"), nullptr);
      EXPECT_NE(unit.entity.find_port("p_data"), nullptr);
      EXPECT_NE(unit.entity.find_port("full"), nullptr);
      EXPECT_EQ(unit.entity.find_port("p_write"), nullptr);
    }
    const std::string v = meta::to_vhdl(unit);
    EXPECT_NE(v.find("entity " + unit.entity.name), std::string::npos);
    EXPECT_NE(v.find("wr_ptr : process (wr_clk, wr_rst)"),
              std::string::npos);
    EXPECT_NE(v.find("rd_ptr : process (rd_clk, rd_rst)"),
              std::string::npos);
    EXPECT_NE(v.find("sync_rptr"), std::string::npos);
    EXPECT_NE(v.find("sync_wptr"), std::string::npos);
    EXPECT_NE(v.find("end rtl;"), std::string::npos);
  }
}

TEST(DualClkDesign, FullyDeclaredAndTwoDomains) {
  auto d = designs::make_saa2vga_dualclk(
      {.width = 16, .height = 12, .cdc_depth = 8, .frames = 1});
  Simulator sim(*d);
  d->visit([&](const rtl::Module& m) {
    EXPECT_FALSE(m.opaque_state())
        << "module '" << m.full_name()
        << "' has no sequential-state declaration";
  });
  EXPECT_EQ(sim.domain_count(), 2u);
  EXPECT_EQ(sim.domain_info(0).name, "pix");
  EXPECT_EQ(sim.domain_info(1).name, "mem");
  sim.reset();
  ASSERT_TRUE(sim.run([&] { return d->finished(); }, kMaxCycles).ok())
      << sim.progress_report();
  EXPECT_GT(sim.stats().seq_skips, 0u);
}

}  // namespace
}  // namespace hwpat
