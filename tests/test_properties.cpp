// Property-style sweeps and failure-injection tests across the whole
// stack: parameterised geometry/latency/capacity sweeps on the pattern
// designs, protocol-violation injection on every interface layer, and
// invariants of the generated artifacts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>

#include "core/algorithm.hpp"
#include "core/blur.hpp"
#include "designs/design.hpp"
#include "devices/async_fifo.hpp"
#include "estimate/tech.hpp"
#include "meta/codegen.hpp"
#include "meta/factory.hpp"
#include "rtl/clock.hpp"
#include "rtl/simulator.hpp"
#include "tb_util.hpp"
#include "video/frame.hpp"

namespace hwpat {
namespace {

using rtl::Simulator;

// ------------------------------------------------------------------
// Blur geometry sweep: the algorithm must match the model for every
// frame shape, including degenerate minimum sizes.
// ------------------------------------------------------------------

class BlurGeometry
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BlurGeometry, MatchesReferenceAtEveryShape) {
  const auto [w, h] = GetParam();
  designs::BlurConfig cfg{.width = w, .height = h, .frames = 1,
                          .pattern_seed = 77};
  auto d = designs::make_blur_pattern(cfg);
  Simulator sim(*d);
  sim.reset();
  ASSERT_TRUE(sim.run([&] { return d->finished(); }, 5'000'000).ok())
      << sim.progress_report();
  const auto in = designs::camera_frames(w, h, 1, 77);
  ASSERT_EQ(d->sink().frames().size(), 1u);
  EXPECT_EQ(d->sink().frames().front(), video::blur_reference(in.front()))
      << w << "x" << h;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlurGeometry,
    ::testing::Values(std::pair{3, 3}, std::pair{4, 3}, std::pair{3, 4},
                      std::pair{5, 17}, std::pair{17, 5},
                      std::pair{32, 8}, std::pair{31, 9}));

// ------------------------------------------------------------------
// SRAM latency sweep: the pattern pipeline tolerates any memory speed.
// ------------------------------------------------------------------

class SramLatency : public ::testing::TestWithParam<int> {};

TEST_P(SramLatency, QueueSurvivesSlowMemories) {
  struct Tb : rtl::Module {
    core::StreamWires w;
    core::SramMasterWires mw;
    core::SramStreamContainer cont;
    devices::ExternalSram sram;
    tb::StreamFeeder feeder;
    tb::StreamDrainer drainer;
    Tb(int latency, std::vector<Word> data)
        : Module(nullptr, "tb"),
          w(*this, "q", 8, 16),
          mw(*this, "m", 8, 16),
          cont(this, "q0",
               {.kind = core::ContainerKind::Queue, .elem_bits = 8,
                .capacity = 8},
               w.impl(), mw.master()),
          sram(this, "sram",
               {.data_width = 8, .addr_width = 16, .latency = latency},
               mw.device()),
          feeder(this, "f", w.producer(), std::move(data)),
          drainer(this, "d", w.consumer()) {}
  };
  std::vector<Word> data(25);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = truncate(i * 7 + 1, 8);
  Tb tb(GetParam(), data);
  Simulator sim(tb);
  sim.reset();
  tb::step_until(
      sim, [&] { return tb.drainer.got().size() == data.size(); },
      200000);
  EXPECT_EQ(tb.drainer.got(), data);
}

INSTANTIATE_TEST_SUITE_P(Latencies, SramLatency,
                         ::testing::Values(1, 2, 3, 5, 8));

// ------------------------------------------------------------------
// Design-level geometry sweep: saa2vga transports any frame shape.
// ------------------------------------------------------------------

class Saa2VgaGeometry
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Saa2VgaGeometry, IdentityAtEveryShape) {
  const auto [w, h] = GetParam();
  designs::Saa2VgaConfig cfg{.width = w, .height = h,
                             .buffer_depth = 16,
                             .device = devices::DeviceKind::FifoCore,
                             .frames = 1};
  auto d = designs::make_saa2vga_pattern(cfg);
  Simulator sim(*d);
  sim.reset();
  ASSERT_TRUE(sim.run([&] { return d->finished(); }, 5'000'000).ok())
      << sim.progress_report();
  const auto in = designs::camera_frames(w, h, 1, cfg.pattern_seed);
  ASSERT_EQ(d->sink().frames().size(), 1u);
  EXPECT_EQ(d->sink().frames().front(), in.front());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Saa2VgaGeometry,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 1}, std::pair{1, 7},
                      std::pair{9, 7}, std::pair{64, 2}));

// ------------------------------------------------------------------
// Codegen invariants across ALL legal iterator specs.
// ------------------------------------------------------------------

struct IterSpecCase {
  core::ContainerKind kind;
  core::Traversal traversal;
  core::IterRole role;
};

class IteratorCodegenSweep
    : public ::testing::TestWithParam<IterSpecCase> {};

TEST_P(IteratorCodegenSweep, PortsMirrorTheOperationSet) {
  const auto& c = GetParam();
  meta::IteratorSpec is;
  is.container.name = core::to_string(c.kind);
  is.container.kind = c.kind;
  is.container.device = core::legal_devices(c.kind).front();
  is.container.elem_bits = 8;
  is.container.depth = 64;
  is.traversal = c.traversal;
  is.role = c.role;
  const auto unit = meta::generate_iterator(is);
  const auto ops = is.effective_ops();
  // Invariant: exactly the used operations appear as op_* ports.
  for (core::Op op : {core::Op::Inc, core::Op::Dec, core::Op::Read,
                      core::Op::Write, core::Op::Index}) {
    const auto* port = unit.entity.find_port("op_" + core::to_string(op));
    EXPECT_EQ(port != nullptr, ops.contains(op))
        << core::to_string(op) << " on " << core::to_string(c.kind);
  }
  // Invariant: data width follows the element type and the role.
  if (ops.contains(core::Op::Read)) {
    EXPECT_EQ(unit.entity.find_port("data")->type.width(), 8);
  }
  if (ops.contains(core::Op::Write)) {
    EXPECT_EQ(unit.entity.find_port("data_in")->type.width(), 8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LegalSpecs, IteratorCodegenSweep,
    ::testing::Values(
        IterSpecCase{core::ContainerKind::ReadBuffer,
                     core::Traversal::Forward, core::IterRole::Input},
        IterSpecCase{core::ContainerKind::WriteBuffer,
                     core::Traversal::Forward, core::IterRole::Output},
        IterSpecCase{core::ContainerKind::Queue, core::Traversal::Forward,
                     core::IterRole::Input},
        IterSpecCase{core::ContainerKind::Stack,
                     core::Traversal::Backward, core::IterRole::Input},
        IterSpecCase{core::ContainerKind::Stack, core::Traversal::Forward,
                     core::IterRole::Output},
        IterSpecCase{core::ContainerKind::Vector,
                     core::Traversal::Bidirectional,
                     core::IterRole::InputOutput},
        IterSpecCase{core::ContainerKind::Vector, core::Traversal::Random,
                     core::IterRole::InputOutput}));

// ------------------------------------------------------------------
// Failure injection
// ------------------------------------------------------------------

TEST(FailureInjection, UnthrottledSourceOverflowsStrictBuffer) {
  // A camera that ignores backpressure into a tiny buffer: the strict
  // container reports the overflow instead of silently dropping.
  struct Tb : rtl::Module {
    rtl::Bit sof{*this, "sof"};
    core::StreamWires w;
    core::CoreStreamContainer q;
    video::VideoSource src;
    Tb()
        : Module(nullptr, "tb"),
          w(*this, "q", 8, 16),
          q(this, "q0",
            {.kind = core::ContainerKind::Queue, .elem_bits = 8,
             .depth = 2},
            w.impl()),
          src(this, "cam",
              {.pixel_interval = 1, .respect_backpressure = false},
              w.producer(), sof, {video::gradient(8, 8)}) {}
  };
  Tb tb;
  Simulator sim(tb);
  sim.reset();
  EXPECT_THROW(sim.step(50), ProtocolError);
}

TEST(FailureInjection, WidthAdaptWriteWhileDrainingThrows) {
  struct Tb : rtl::Module {
    core::StreamWires w;
    core::IterWires iw;
    std::unique_ptr<core::Container> q;
    std::unique_ptr<core::Iterator> it;
    Tb() : Module(nullptr, "tb"),
           w(*this, "q", 8, 16),
           iw(*this, "it", 24, 16) {
      meta::ContainerSpec cs;
      cs.name = "q";
      cs.kind = core::ContainerKind::Queue;
      cs.device = devices::DeviceKind::FifoCore;
      cs.elem_bits = 24;
      cs.bus_bits = 8;
      cs.depth = 8;
      q = meta::build_stream_container(
          this, cs, meta::StreamBuildPorts{.method = w.impl()});
      it = meta::build_output_iterator(
          this,
          {.name = "wit", .traversal = core::Traversal::Forward,
           .role = core::IterRole::Output, .used_ops = {},
           .container = cs},
          w.producer(), iw.impl());
    }
  };
  Tb tb;
  Simulator sim(tb);
  sim.reset();
  tb.iw.write.write(true);
  tb.iw.wdata.write(0xABCDEF);
  sim.step();
  // Still draining lanes: a second write is a protocol violation.
  EXPECT_THROW(sim.step(), ProtocolError);
}

TEST(FailureInjection, BlurNeverStartedStaysQuiet) {
  // No start strobe: the algorithm must not touch its iterators.
  designs::BlurConfig cfg{.width = 8, .height = 6, .frames = 1};
  struct Quiet : rtl::Module {
    core::IterWires in_iw, out_iw;
    core::AlgoWires ctl;
    core::BlurFsm blur;
    explicit Quiet(const designs::BlurConfig& c)
        : Module(nullptr, "tb"),
          in_iw(*this, "in", 24, 16),
          out_iw(*this, "out", 8, 16),
          ctl(*this, "ctl"),
          blur(this, "blur",
               {.width = c.width, .height = c.height, .pixel_bits = 8,
                .frames = static_cast<std::uint64_t>(c.frames)},
               in_iw.client(), out_iw.client(), ctl.control()) {}
  };
  Quiet tb(cfg);
  Simulator sim(tb);
  sim.reset();
  sim.step(20);
  EXPECT_FALSE(tb.in_iw.inc.read());
  EXPECT_FALSE(tb.out_iw.write.read());
  EXPECT_FALSE(tb.ctl.busy.read());
}

TEST(FailureInjection, GeneratorRejectsNonsenseSpecs) {
  meta::ContainerSpec s;
  s.name = "x";
  s.kind = core::ContainerKind::Vector;
  s.device = devices::DeviceKind::LineBuffer3;  // illegal binding
  EXPECT_THROW(meta::generate_container(s), SpecError);

  meta::ContainerSpec ok;
  ok.name = "";
  EXPECT_THROW(meta::validate(ok), SpecError);  // empty name

  meta::ContainerSpec deep;
  deep.name = "d";
  deep.kind = core::ContainerKind::Queue;
  deep.device = devices::DeviceKind::FifoCore;
  deep.depth = 0;  // no storage
  EXPECT_THROW(meta::validate(deep), SpecError);
}

// ------------------------------------------------------------------
// Async-FIFO flag invariants under random push/pop pressure
//
// The dual-clock FIFO's full/empty flags are *conservative* (each side
// sees the other's pointer through a 2-flop synchronizer), and that
// conservatism is exactly what makes a CDC transfer safe.  The
// properties, checked against the model occupancy (AsyncFifo::size(),
// the testbench-only wbin-rbin ground truth) at every settled instant
// of a randomized run:
//
//   * never-overflow:  0 <= size <= depth, always;
//   * safe push:   !full  =>  size <  depth (>= 1 slot of margin, so a
//                  push decided on the flag can never overflow);
//   * safe pop:    !empty =>  size >= 1 (a pop decided on the flag can
//                  never underflow);
//   * losslessness: the popped sequence is exactly the pushed sequence
//                  (strict mode doubles as the overflow/underflow trap:
//                  a lying flag would raise ProtocolError).
//
// Swept over all four PR-3 clock ratios with seeded random pressure
// patterns on both sides.
// ------------------------------------------------------------------

/// Producer/consumer around one AsyncFifo, throttled by pre-drawn
/// random patterns so construction is deterministic per seed.
struct RandomCdcTb : rtl::Module {
  rtl::ClockDomain wr_dom, rd_dom;
  rtl::Bit wr_en{*this, "wr_en"}, rd_en{*this, "rd_en"};
  rtl::Bit full{*this, "full"}, empty{*this, "empty"};
  rtl::Bus wr_data{*this, "wr_data", 8}, rd_data{*this, "rd_data", 8};
  devices::AsyncFifo fifo;

  struct Producer : rtl::Module {
    RandomCdcTb& tb;
    std::vector<bool> pattern;
    std::size_t t = 0;
    std::vector<Word> pushed;
    Producer(RandomCdcTb* parent, std::vector<bool> pat)
        : Module(parent, "producer"), tb(*parent), pattern(std::move(pat)) {}
    void eval_comb() override {
      const bool want = t < pattern.size() && pattern[t];
      tb.wr_en.write(want && !tb.full.read());
      tb.wr_data.write(truncate(0x11 * (pushed.size() + 1), 8));
    }
    void on_clock() override {
      ++t;
      if (tb.wr_en.read()) pushed.push_back(tb.wr_data.read());
      seq_touch();
    }
    void on_reset() override {
      t = 0;
      pushed.clear();
    }
    void declare_state() override { declare_seq_state(); }
  } producer;

  struct Consumer : rtl::Module {
    RandomCdcTb& tb;
    std::vector<bool> pattern;
    std::size_t t = 0;
    std::vector<Word> popped;
    Consumer(RandomCdcTb* parent, std::vector<bool> pat)
        : Module(parent, "consumer"), tb(*parent), pattern(std::move(pat)) {}
    void eval_comb() override {
      const bool want = t < pattern.size() && pattern[t];
      tb.rd_en.write(want && !tb.empty.read());
    }
    void on_clock() override {
      ++t;
      if (tb.rd_en.read()) popped.push_back(tb.rd_data.read());
      seq_touch();
    }
    void on_reset() override {
      t = 0;
      popped.clear();
    }
    void declare_state() override { declare_seq_state(); }
  } consumer;

  RandomCdcTb(std::int64_t wr_period, std::int64_t rd_period, int depth,
              unsigned seed, double push_density, double pop_density)
      : Module(nullptr, "rand_cdc_tb"),
        wr_dom("wr", wr_period),
        rd_dom("rd", rd_period),
        fifo(this, "fifo", {.width = 8, .depth = depth},
             devices::AsyncFifoPorts{wr_en, wr_data, full, rd_en, rd_data,
                                     empty},
             &wr_dom, &rd_dom),
        producer(this, draw(seed, push_density)),
        consumer(this, draw(seed + 0x9e3779b9u, pop_density)) {
    set_clock_domain(&rd_dom);
    producer.set_clock_domain(&wr_dom);
    consumer.set_clock_domain(&rd_dom);
  }
  void declare_state() override { declare_seq_state(); }

  static std::vector<bool> draw(unsigned seed, double density) {
    std::mt19937 rng(seed);
    std::bernoulli_distribution bit(density);
    std::vector<bool> p(4000);
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = bit(rng);
    return p;
  }
};

class AsyncFifoFlagInvariants
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AsyncFifoFlagInvariants, ConservativeUnderRandomPressure) {
  const auto [wr_period, rd_period] = GetParam();
  // Three pressure profiles per ratio: balanced, writer-heavy (tests
  // the full flag) and reader-heavy (tests the empty flag).
  const struct {
    unsigned seed;
    double push, pop;
  } profiles[] = {{11, 0.5, 0.5}, {22, 0.95, 0.25}, {33, 0.25, 0.95}};
  for (const auto& pr : profiles) {
    RandomCdcTb tb(wr_period, rd_period, 8, pr.seed, pr.push, pr.pop);
    Simulator sim(tb);
    sim.reset();
    const std::string label = std::to_string(wr_period) + ":" +
                              std::to_string(rd_period) + " seed " +
                              std::to_string(pr.seed);
    for (int step = 0; step < 3000; ++step) {
      sim.step();  // strict mode: a lying flag throws ProtocolError here
      const int size = tb.fifo.size();
      const int depth = tb.fifo.config().depth;
      ASSERT_GE(size, 0) << label << " step " << step << ": underflow";
      ASSERT_LE(size, depth) << label << " step " << step << ": overflow";
      if (!tb.full.read()) {
        ASSERT_LT(size, depth)
            << label << " step " << step
            << ": full deasserted without a slot of margin";
      }
      if (!tb.empty.read()) {
        ASSERT_GE(size, 1)
            << label << " step " << step
            << ": empty deasserted with nothing to pop";
      }
    }
    // Lossless, in order, no duplication — and the run moved real data.
    ASSERT_GT(tb.consumer.popped.size(), 100u) << label;
    // A duplicating FIFO would pop more than was pushed: catch that as
    // a clean failure, not an out-of-range iterator below.
    ASSERT_LE(tb.consumer.popped.size(), tb.producer.pushed.size())
        << label;
    const std::vector<Word> expect(
        tb.producer.pushed.begin(),
        tb.producer.pushed.begin() +
            static_cast<std::ptrdiff_t>(tb.consumer.popped.size()));
    EXPECT_EQ(tb.consumer.popped, expect) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ClockRatios, AsyncFifoFlagInvariants,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 3}, std::pair{3, 1},
                      std::pair{3, 7}));

// ------------------------------------------------------------------
// Estimator invariants over real designs
// ------------------------------------------------------------------

TEST(EstimatorProperties, DeeperBuffersNeverShrinkResources) {
  int last_ff = 0, last_bram = 0;
  for (int depth : {64, 256, 1024, 4096}) {
    designs::Saa2VgaConfig cfg{.width = 32, .height = 24,
                               .buffer_depth = depth,
                               .device = devices::DeviceKind::FifoCore};
    const auto r = estimate::estimate(*designs::make_saa2vga_pattern(cfg));
    EXPECT_GE(r.ff, last_ff) << depth;
    EXPECT_GE(r.bram, last_bram) << depth;
    last_ff = r.ff;
    last_bram = r.bram;
  }
}

TEST(EstimatorProperties, PatternCustomDeltaIsStableAcrossDepths) {
  // The +1 FF overhead must not scale with design size.
  for (int depth : {64, 512, 2048}) {
    designs::Saa2VgaConfig cfg{.width = 32, .height = 24,
                               .buffer_depth = depth,
                               .device = devices::DeviceKind::FifoCore};
    const auto p = estimate::estimate(*designs::make_saa2vga_pattern(cfg));
    const auto c = estimate::estimate(*designs::make_saa2vga_custom(cfg));
    EXPECT_LE(std::abs(p.ff - c.ff), 2) << depth;
    EXPECT_LE(std::abs(p.lut - c.lut), 4) << depth;
  }
}

// ------------------------------------------------------------------
// Waveform smoke test over a full design
// ------------------------------------------------------------------

TEST(Waveform, FullDesignDumpsVcd) {
  designs::Saa2VgaConfig cfg{.width = 8, .height = 6, .buffer_depth = 16,
                             .device = devices::DeviceKind::FifoCore,
                             .frames = 1};
  auto d = designs::make_saa2vga_pattern(cfg);
  const std::string path = "test_properties_design.vcd";
  {
    Simulator sim(*d);
    sim.open_vcd(path);
    sim.reset();
    ASSERT_TRUE(sim.run([&] { return d->finished(); }, 100000).ok())
        << sim.progress_report();
  }  // destroying the simulator flushes and closes the VCD stream
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("$scope module saa2vga_pattern"), std::string::npos);
  EXPECT_NE(all.find("$scope module rbuffer"), std::string::npos);
  EXPECT_NE(all.find("$scope module copy"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hwpat
