// Unit tests of the RTL simulation kernel: two-phase signal semantics,
// delta-cycle settling, clocking, reset, hierarchy, VCD output and
// failure modes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "rtl/simulator.hpp"
#include "rtl/vcd.hpp"

namespace hwpat::rtl {
namespace {

/// A registered counter with combinational "is-max" flag.
class Counter : public Module {
 public:
  Counter(Module* parent, std::string name, int width, Word max)
      : Module(parent, std::move(name)),
        max_(max),
        value(*this, "value", width),
        at_max(*this, "at_max") {}

  void eval_comb() override { at_max.write(value.read() == max_); }
  void on_clock() override {
    value.write(value.read() == max_ ? 0 : value.read() + 1);
  }

  Word max_;
  Bus value;
  Bit at_max;
};

/// A 3-stage combinational chain: c = b+1, b = a+1.
class CombChain : public Module {
 public:
  CombChain(Module* parent)
      : Module(parent, "chain"),
        a(*this, "a", 8),
        b(*this, "b", 8),
        c(*this, "c", 8) {}

  void eval_comb() override {
    b.write(a.read() + 1);
    c.write(b.read() + 1);
  }

  Bus a, b, c;
};

/// Intentional combinational feedback: x = x + 1.
class CombLoop : public Module {
 public:
  explicit CombLoop(Module* parent)
      : Module(parent, "loop"), x(*this, "x", 8) {}
  void eval_comb() override { x.write(x.read() + 1); }
  Bus x;
};

TEST(Signal, TwoPhaseWriteIsInvisibleUntilCommit) {
  Module top(nullptr, "top");
  Bus s(top, "s", 8, 5);
  EXPECT_EQ(s.read(), 5u);
  s.write(9);
  EXPECT_EQ(s.read(), 5u);  // not yet committed
  EXPECT_TRUE(s.commit());
  EXPECT_EQ(s.read(), 9u);
  EXPECT_FALSE(s.commit());  // unchanged
}

TEST(Signal, BusTruncatesToWidth) {
  Module top(nullptr, "top");
  Bus s(top, "s", 4);
  s.write(0xFF);
  s.commit();
  EXPECT_EQ(s.read(), 0xFu);
}

TEST(Signal, ResetValueRestoresInit) {
  Module top(nullptr, "top");
  Bus s(top, "s", 8, 42);
  s.write(7);
  s.commit();
  s.reset_value();
  EXPECT_EQ(s.read(), 42u);
}

TEST(Signal, FullNameIsHierarchical) {
  Module top(nullptr, "top");
  Module sub(&top, "sub");
  Bit b(sub, "flag");
  EXPECT_EQ(b.full_name(), "top.sub.flag");
}

TEST(Module, HierarchyAndVisit) {
  Module top(nullptr, "top");
  Module a(&top, "a");
  Module b(&top, "b");
  Module aa(&a, "aa");
  EXPECT_EQ(aa.full_name(), "top.a.aa");
  int count = 0;
  top.visit([&](Module&) { ++count; });
  EXPECT_EQ(count, 4);
  EXPECT_EQ(top.children().size(), 2u);
}

TEST(Simulator, CounterCounts) {
  Counter top(nullptr, "cnt", 8, 255);
  Simulator sim(top);
  sim.reset();
  EXPECT_EQ(top.value.read(), 0u);
  sim.step(5);
  EXPECT_EQ(top.value.read(), 5u);
  EXPECT_EQ(sim.cycle(), 5u);
}

TEST(Simulator, CounterWrapsAtMax) {
  Counter top(nullptr, "cnt", 4, 3);
  Simulator sim(top);
  sim.reset();
  sim.step(3);
  EXPECT_TRUE(top.at_max.read());
  sim.step();
  EXPECT_EQ(top.value.read(), 0u);
}

TEST(Simulator, CombChainSettlesAcrossDeltas) {
  CombChain top(nullptr);
  Simulator sim(top);
  sim.reset();
  top.a.write(10);
  sim.settle();
  EXPECT_EQ(top.b.read(), 11u);
  EXPECT_EQ(top.c.read(), 12u);
}

TEST(Simulator, CombLoopRaises) {
  CombLoop top(nullptr);
  Simulator sim(top);
  EXPECT_THROW(sim.settle(), CombLoopError);
}

TEST(Simulator, DeltaLimitIsConfigurable) {
  CombLoop top(nullptr);
  Simulator sim(top);
  sim.set_delta_limit(7);
  try {
    sim.settle();
    FAIL() << "expected CombLoopError";
  } catch (const CombLoopError& e) {
    EXPECT_NE(std::string(e.what()).find("7"), std::string::npos);
  }
}

TEST(Simulator, ResetRestoresState) {
  Counter top(nullptr, "cnt", 8, 255);
  Simulator sim(top);
  sim.reset();
  sim.step(42);
  sim.reset();
  EXPECT_EQ(top.value.read(), 0u);
  EXPECT_EQ(sim.cycle(), 0u);
}

TEST(Simulator, RunStopsOnCondition) {
  Counter top(nullptr, "cnt", 8, 255);
  Simulator sim(top);
  sim.reset();
  const RunStatus st =
      sim.run([&] { return top.value.read() == 17; }, 1000);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.steps, 17u);
}

TEST(Simulator, RunReportsTimeoutAsValue) {
  Counter top(nullptr, "cnt", 8, 255);
  Simulator sim(top);
  sim.reset();
  const RunStatus st = sim.run([] { return false; }, 10);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.result, RunResult::Timeout);
  EXPECT_EQ(st.steps, 10u);
  // The diagnostic string names the stall point.
  EXPECT_NE(sim.progress_report().find("cycle 10"), std::string::npos);
}

TEST(Vcd, ProducesHeaderAndChanges) {
  const std::string path = "test_rtl_wave.vcd";
  {
    Counter top(nullptr, "cnt", 8, 255);
    Simulator sim(top);
    sim.open_vcd(path);
    sim.reset();
    sim.step(3);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("$scope module cnt"), std::string::npos);
  EXPECT_NE(all.find("$var wire 8"), std::string::npos);
  EXPECT_NE(all.find("#3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(PrimitiveTally, AccumulatesAndMaxFoldsDepth) {
  PrimitiveTally a, b;
  a.regs(8).adder(4).depth(3);
  b.regs(2).lut(5).depth(5);
  a.add(b);
  EXPECT_EQ(a.reg_bits, 10);
  EXPECT_EQ(a.add_bits, 4);
  EXPECT_EQ(a.lut_raw, 5);
  EXPECT_EQ(a.logic_levels, 5);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(PrimitiveTally{}.empty());
}

TEST(PrimitiveTally, FsmAddsStateRegsAndLogic) {
  PrimitiveTally t;
  t.fsm(5, 10);
  EXPECT_EQ(t.reg_bits, 3);  // clog2(5)
  EXPECT_GT(t.lut_raw, 0);
}

}  // namespace
}  // namespace hwpat::rtl
