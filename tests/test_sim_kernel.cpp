// Differential tests of the event-driven simulation kernel against the
// full-sweep reference kernel: every shipped design must produce the
// same cycle count, the same output frames and a byte-identical VCD
// trace under both schedulers, combinational loops must be detected in
// both modes, and the event-driven kernel must actually do less work.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>

#include "designs/design.hpp"
#include "designs/saa2vga_shared.hpp"
#include "devices/arbiter.hpp"
#include "devices/bram.hpp"
#include "devices/fifo.hpp"
#include "devices/lifo.hpp"
#include "devices/linebuffer.hpp"
#include "devices/sram.hpp"
#include "rtl/simulator.hpp"
#include "tb_util.hpp"

namespace hwpat {
namespace {

using designs::BlurConfig;
using designs::Saa2VgaConfig;
using designs::VideoDesign;
using rtl::Simulator;

constexpr std::uint64_t kMaxCycles = 2'000'000;

using tb::slurp_and_remove;

struct RunResult {
  std::uint64_t cycles = 0;
  std::vector<video::Frame> frames;
  std::string vcd;
  Simulator::Stats stats;
};

RunResult run_design(VideoDesign& d, bool full_sweep,
                     const std::string& vcd_path) {
  Simulator sim(d, {.full_sweep = full_sweep});
  sim.open_vcd(vcd_path);
  sim.reset();
  EXPECT_TRUE(sim.run([&] { return d.finished(); }, kMaxCycles).ok())
      << sim.progress_report();
  RunResult r;
  r.cycles = sim.cycle();
  r.frames = d.sink().frames();
  r.stats = sim.stats();
  return r;
}

using Factory = std::function<std::unique_ptr<VideoDesign>()>;

void expect_kernels_equivalent(const std::string& label,
                               const Factory& make) {
  // Two independent instances: module-internal state is per-instance.
  auto d_evt = make();
  auto d_ref = make();
  RunResult evt = run_design(*d_evt, false, label + "_evt.vcd");
  RunResult ref = run_design(*d_ref, true, label + "_ref.vcd");
  evt.vcd = slurp_and_remove(label + "_evt.vcd");
  ref.vcd = slurp_and_remove(label + "_ref.vcd");

  EXPECT_EQ(evt.cycles, ref.cycles) << label << ": cycle counts differ";
  EXPECT_EQ(evt.frames, ref.frames) << label << ": output frames differ";
  EXPECT_EQ(evt.vcd, ref.vcd) << label << ": VCD traces differ";
  // The point of the exercise: strictly fewer eval_comb() calls and
  // signal commits than the sweep kernel on any non-trivial design.
  EXPECT_LT(evt.stats.evals, ref.stats.evals) << label;
  EXPECT_LT(evt.stats.commits, ref.stats.commits) << label;
}

TEST(SimKernelDiff, Saa2VgaPatternFifo) {
  expect_kernels_equivalent("diff_saa2vga_pat_fifo", [] {
    return designs::make_saa2vga_pattern(
        {.width = 24, .height = 18, .buffer_depth = 64, .frames = 2});
  });
}

TEST(SimKernelDiff, Saa2VgaPatternSram) {
  expect_kernels_equivalent("diff_saa2vga_pat_sram", [] {
    return designs::make_saa2vga_pattern(
        {.width = 24, .height = 18, .buffer_depth = 64,
         .device = devices::DeviceKind::Sram, .frames = 2});
  });
}

TEST(SimKernelDiff, Saa2VgaCustomFifo) {
  expect_kernels_equivalent("diff_saa2vga_cus_fifo", [] {
    return designs::make_saa2vga_custom(
        {.width = 24, .height = 18, .buffer_depth = 64, .frames = 2});
  });
}

TEST(SimKernelDiff, Saa2VgaCustomSram) {
  expect_kernels_equivalent("diff_saa2vga_cus_sram", [] {
    return designs::make_saa2vga_custom(
        {.width = 24, .height = 18, .buffer_depth = 64,
         .device = devices::DeviceKind::Sram, .frames = 2});
  });
}

TEST(SimKernelDiff, Saa2VgaSharedSram) {
  expect_kernels_equivalent("diff_saa2vga_shared", [] {
    return designs::make_saa2vga_shared(
        {.width = 16, .height = 12, .buffer_depth = 64, .frames = 2});
  });
}

TEST(SimKernelDiff, BlurPattern) {
  expect_kernels_equivalent("diff_blur_pat", [] {
    return designs::make_blur_pattern(
        {.width = 24, .height = 18, .frames = 2});
  });
}

TEST(SimKernelDiff, BlurCustom) {
  expect_kernels_equivalent("diff_blur_cus", [] {
    return designs::make_blur_custom(
        {.width = 24, .height = 18, .frames = 2});
  });
}

// ------------------------------------------------------------------
// Failure-mode and boundary parity
// ------------------------------------------------------------------

/// Intentional combinational feedback: x = x + 1.
class CombLoop : public rtl::Module {
 public:
  explicit CombLoop(Module* parent)
      : Module(parent, "loop"), x(*this, "x", 8) {}
  void eval_comb() override { x.write(x.read() + 1); }
  rtl::Bus x;
};

TEST(SimKernelDiff, CombLoopRaisesInBothModes) {
  for (const bool full_sweep : {false, true}) {
    CombLoop top(nullptr);
    Simulator sim(top, {.full_sweep = full_sweep});
    EXPECT_THROW(sim.settle(), CombLoopError)
        << (full_sweep ? "full_sweep" : "event");
  }
}

TEST(SimKernelDiff, CombLoopRaisesAfterClockEdgeInBothModes) {
  for (const bool full_sweep : {false, true}) {
    CombLoop top(nullptr);
    Simulator sim(top, {.full_sweep = full_sweep});
    EXPECT_THROW(sim.step(), CombLoopError)
        << (full_sweep ? "full_sweep" : "event");
  }
}

/// A registered counter with combinational "is-max" flag.
class Counter : public rtl::Module {
 public:
  Counter(Module* parent, std::string name, int width, Word max)
      : Module(parent, std::move(name)),
        max_(max),
        value(*this, "value", width),
        at_max(*this, "at_max") {}

  void eval_comb() override { at_max.write(value.read() == max_); }
  void on_clock() override {
    value.write(value.read() == max_ ? 0 : value.read() + 1);
  }

  Word max_;
  rtl::Bus value;
  rtl::Bit at_max;
};

TEST(SimKernelDiff, RunSucceedsExactlyAtMaxCycles) {
  Counter top(nullptr, "cnt", 8, 255);
  Simulator sim(top);
  sim.reset();
  // The condition becomes true on the 5th edge and max_cycles is 5:
  // that is a success, not a timeout.
  const rtl::RunStatus st =
      sim.run([&] { return top.value.read() == 5; }, 5);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.steps, 5u);
}

TEST(SimKernelDiff, RunTimeoutProgressReportMentionsCycle) {
  Counter top(nullptr, "cnt", 8, 255);
  Simulator sim(top);
  sim.reset();
  sim.step(3);
  const rtl::RunStatus st = sim.run([] { return false; }, 7);
  EXPECT_EQ(st.result, rtl::RunResult::Timeout);
  EXPECT_EQ(st.steps, 7u);
  // 3 pre-steps + 7 budget = the stall is reported at cycle 10.
  EXPECT_NE(sim.progress_report().find("cycle 10"), std::string::npos)
      << sim.progress_report();
}

TEST(SimKernelDiff, TestbenchWritesPropagateWithoutClock) {
  for (const bool full_sweep : {false, true}) {
    Counter top(nullptr, "cnt", 8, 3);
    Simulator sim(top, {.full_sweep = full_sweep});
    sim.reset();
    EXPECT_FALSE(top.at_max.read());
    top.value.write(3);  // testbench poke, no clock edge
    sim.settle();
    EXPECT_TRUE(top.at_max.read())
        << (full_sweep ? "full_sweep" : "event");
  }
}

TEST(SimKernelDiff, SequentialSimulatorsRebindCleanly) {
  Counter top(nullptr, "cnt", 8, 255);
  {
    Simulator sim(top);
    sim.reset();
    sim.step(4);
    EXPECT_EQ(top.value.read(), 4u);
  }
  Simulator sim2(top, {.full_sweep = true});
  sim2.reset();
  sim2.step(2);
  EXPECT_EQ(top.value.read(), 2u);
}

// ------------------------------------------------------------------
// Declared sequential state: per-device parity
//
// Each device is driven standalone by a deterministic scripted
// testbench (the TB itself stays opaque_state, so the conservative and
// declared paths coexist in one design).  The event-driven run must
// produce a byte-identical VCD to full_sweep, do strictly less work,
// and actually exercise the post-edge skip (seq_skips > 0).
// ------------------------------------------------------------------

template <typename TB>
void expect_device_parity(const std::string& label, int cycles) {
  struct Out {
    std::string vcd;
    Simulator::Stats stats;
  };
  auto run = [&](bool full_sweep) {
    TB tb;
    const std::string path =
        label + (full_sweep ? "_ref.vcd" : "_evt.vcd");
    Simulator::Stats stats;
    {
      Simulator sim(tb, {.full_sweep = full_sweep});
      sim.open_vcd(path);
      sim.reset();
      sim.step(cycles);
      stats = sim.stats();
    }  // destroying the simulator flushes the VCD stream
    return Out{slurp_and_remove(path), stats};
  };
  const Out evt = run(false);
  const Out ref = run(true);
  EXPECT_EQ(evt.vcd, ref.vcd) << label << ": VCD traces differ";
  EXPECT_LT(evt.stats.evals, ref.stats.evals) << label;
  EXPECT_LT(evt.stats.commits, ref.stats.commits) << label;
  EXPECT_GT(evt.stats.seq_skips, 0u)
      << label << ": declared-state skipping never engaged";
  EXPECT_EQ(ref.stats.seq_skips, 0u) << label << ": full_sweep must not skip";
}

using devices::ArbMasterPorts;
using devices::ArbSlavePorts;
using rtl::Bit;
using rtl::Bus;
using rtl::Module;

/// FIFO driven through fill, drain, simultaneous read+write and long
/// idle windows.  The script is a pure function of the edge counter.
struct FifoParityTb : Module {
  Bit wr_en{*this, "wr_en"}, rd_en{*this, "rd_en"};
  Bit empty{*this, "empty"}, full{*this, "full"};
  Bus wr_data{*this, "wr_data", 8}, rd_data{*this, "rd_data", 8};
  Bus level{*this, "level", 16};
  devices::FifoCore fifo;
  int t_ = 0;

  FifoParityTb()
      : Module(nullptr, "tb"),
        fifo(this, "fifo", {.width = 8, .depth = 8},
             devices::FifoPorts{wr_en, wr_data, rd_en, rd_data, empty,
                                full, level}) {}

  void eval_comb() override {
    const bool push = (t_ >= 4 && t_ < 9) || (t_ >= 30 && t_ < 34);
    const bool pop = (t_ >= 20 && t_ < 23) || (t_ >= 30 && t_ < 34);
    wr_en.write(push);
    rd_en.write(pop);
    wr_data.write(static_cast<Word>(0x40 + t_));
  }
  void on_clock() override { ++t_; }
  void on_reset() override { t_ = 0; }
};

TEST(SeqStateParity, FifoStandalone) {
  expect_device_parity<FifoParityTb>("seq_fifo", 60);
}

/// LIFO through push, pop, replace-top (pop+push) and idle windows.
struct LifoParityTb : Module {
  Bit wr_en{*this, "wr_en"}, rd_en{*this, "rd_en"};
  Bit empty{*this, "empty"}, full{*this, "full"};
  Bus wr_data{*this, "wr_data", 8}, rd_data{*this, "rd_data", 8};
  Bus level{*this, "level", 16};
  devices::LifoCore lifo;
  int t_ = 0;

  LifoParityTb()
      : Module(nullptr, "tb"),
        lifo(this, "lifo", {.width = 8, .depth = 8},
             devices::LifoPorts{wr_en, wr_data, rd_en, rd_data, empty,
                                full, level}) {}

  void eval_comb() override {
    const bool push =
        (t_ >= 3 && t_ < 7) || t_ == 20 || (t_ >= 40 && t_ < 42);
    const bool pop = t_ == 20 || (t_ >= 25 && t_ < 29);  // 20: replace-top
    wr_en.write(push);
    rd_en.write(pop);
    wr_data.write(static_cast<Word>(0x70 + t_));
  }
  void on_clock() override { ++t_; }
  void on_reset() override { t_ = 0; }
};

TEST(SeqStateParity, LifoStandalone) {
  expect_device_parity<LifoParityTb>("seq_lifo", 60);
}

/// Dual-port block RAM: port A writes then reads back, port B shadows,
/// long idle tail.
struct BramParityTb : Module {
  Bit a_en{*this, "a_en"}, a_we{*this, "a_we"}, b_en{*this, "b_en"};
  Bus a_addr{*this, "a_addr", 4}, a_wdata{*this, "a_wdata", 8};
  Bus a_rdata{*this, "a_rdata", 8};
  Bus b_addr{*this, "b_addr", 4}, b_rdata{*this, "b_rdata", 8};
  devices::BlockRam ram;
  int t_ = 0;

  BramParityTb()
      : Module(nullptr, "tb"),
        ram(this, "ram", {.data_width = 8, .depth = 16},
            devices::BramPorts{a_en, a_we, a_addr, a_wdata, a_rdata,
                               b_en, b_addr, b_rdata}) {}

  void eval_comb() override {
    const bool wr = t_ >= 2 && t_ < 10;   // write 8 cells
    const bool rd = t_ >= 14 && t_ < 22;  // read them back
    a_en.write(wr || rd);
    a_we.write(wr);
    a_addr.write(static_cast<Word>(t_ % 8));
    a_wdata.write(static_cast<Word>(0x90 + t_));
    b_en.write(rd);
    b_addr.write(static_cast<Word>((t_ + 1) % 8));
  }
  void on_clock() override { ++t_; }
  void on_reset() override { t_ = 0; }
};

TEST(SeqStateParity, BramStandalone) {
  expect_device_parity<BramParityTb>("seq_bram", 40);
}

/// External SRAM behind its req/ack handshake: four writes then four
/// reads, each held until acknowledged, with gaps and an idle tail.
struct SramParityTb : Module {
  Bit req{*this, "req"}, we{*this, "we"}, ack{*this, "ack"};
  Bus addr{*this, "addr", 8}, wdata{*this, "wdata", 8};
  Bus rdata{*this, "rdata", 8};
  devices::ExternalSram sram;
  int idx_ = 0;     // completed operations
  bool active_ = false;
  int gap_ = 0;     // idle cycles before the next request

  SramParityTb()
      : Module(nullptr, "tb"),
        sram(this, "sram", {.data_width = 8, .addr_width = 8, .latency = 2},
             devices::SramPorts{req, we, addr, wdata, ack, rdata}) {}

  void eval_comb() override {
    req.write(active_);
    we.write(idx_ < 4);  // ops 0..3 write, 4..7 read back
    addr.write(static_cast<Word>(idx_ % 4));
    wdata.write(static_cast<Word>(0x20 + idx_));
  }
  void on_clock() override {
    if (active_) {
      if (ack.read()) {
        active_ = false;
        ++idx_;
        gap_ = 2;
      }
    } else if (gap_ > 0) {
      --gap_;
    } else if (idx_ < 8) {
      active_ = true;
    }
  }
  void on_reset() override {
    idx_ = 0;
    active_ = false;
    gap_ = 1;
  }
};

TEST(SeqStateParity, SramStandalone) {
  expect_device_parity<SramParityTb>("seq_sram", 80);
}

/// Two scripted masters contending for one SRAM through the arbiter
/// (round-robin), then both going quiet.
struct ArbiterParityTb : Module {
  // Master wires (m0, m1) and the slave side toward the SRAM.
  Bit m0_req{*this, "m0_req"}, m0_we{*this, "m0_we"}, m0_ack{*this, "m0_ack"};
  Bus m0_addr{*this, "m0_addr", 8}, m0_wdata{*this, "m0_wdata", 8};
  Bus m0_rdata{*this, "m0_rdata", 8};
  Bit m1_req{*this, "m1_req"}, m1_we{*this, "m1_we"}, m1_ack{*this, "m1_ack"};
  Bus m1_addr{*this, "m1_addr", 8}, m1_wdata{*this, "m1_wdata", 8};
  Bus m1_rdata{*this, "m1_rdata", 8};
  Bit s_req{*this, "s_req"}, s_we{*this, "s_we"}, s_ack{*this, "s_ack"};
  Bus s_addr{*this, "s_addr", 8}, s_wdata{*this, "s_wdata", 8};
  Bus s_rdata{*this, "s_rdata", 8};
  devices::SramArbiter arb;
  devices::ExternalSram sram;
  int done0_ = 0, done1_ = 0;  // completed ops per master

  ArbiterParityTb()
      : Module(nullptr, "tb"),
        arb(this, "arb", devices::ArbPolicy::RoundRobin,
            {ArbMasterPorts{&m0_req, &m0_we, &m0_addr, &m0_wdata, &m0_ack,
                            &m0_rdata},
             ArbMasterPorts{&m1_req, &m1_we, &m1_addr, &m1_wdata, &m1_ack,
                            &m1_rdata}},
            ArbSlavePorts{&s_req, &s_we, &s_addr, &s_wdata, &s_ack,
                          &s_rdata}),
        sram(this, "sram", {.data_width = 8, .addr_width = 8},
             devices::SramPorts{s_req, s_we, s_addr, s_wdata, s_ack,
                                s_rdata}) {}

  void eval_comb() override {
    // Each master holds req while it still has operations; the arbiter
    // serialises them one op per grant.
    m0_req.write(done0_ < 5);
    m0_we.write(true);
    m0_addr.write(static_cast<Word>(done0_));
    m0_wdata.write(static_cast<Word>(0x10 + done0_));
    m1_req.write(done1_ < 5);
    m1_we.write(done1_ < 3);  // last two ops read back
    m1_addr.write(static_cast<Word>(0x40 + (done1_ % 3)));
    m1_wdata.write(static_cast<Word>(0x50 + done1_));
  }
  void on_clock() override {
    if (m0_ack.read()) ++done0_;
    if (m1_ack.read()) ++done1_;
  }
  void on_reset() override { done0_ = done1_ = 0; }
};

TEST(SeqStateParity, ArbiterSharedSram) {
  expect_device_parity<ArbiterParityTb>("seq_arbiter", 80);
}

/// 3-line buffer fed a raster (with start-of-frame), columns popped as
/// they appear, then the write side stops (idle between bursts).
struct LineBufferParityTb : Module {
  Bit wr_en{*this, "wr_en"}, sof{*this, "sof"}, wr_ready{*this, "wr_ready"};
  Bit rd_en{*this, "rd_en"}, col_valid{*this, "col_valid"};
  Bus wr_data{*this, "wr_data", 8}, col_data{*this, "col_data", 24};
  devices::LineBuffer3 lb;
  static constexpr int kW = 6, kRows = 5;
  int t_ = 0;

  LineBufferParityTb()
      : Module(nullptr, "tb"),
        lb(this, "lb",
           {.pixel_width = 8, .line_width = kW, .col_fifo_depth = 4},
           devices::LineBuffer3Ports{wr_en, wr_data, sof, wr_ready, rd_en,
                                     col_data, col_valid}) {}

  void eval_comb() override {
    const bool feeding = t_ < kW * kRows;
    wr_en.write(feeding);
    sof.write(t_ == 0);
    wr_data.write(static_cast<Word>((7 * t_ + 3) & 0xFF));
    rd_en.write(col_valid.read());  // consume columns as they appear
  }
  void on_clock() override { ++t_; }
  void on_reset() override { t_ = 0; }
};

TEST(SeqStateParity, LineBufferStandalone) {
  expect_device_parity<LineBufferParityTb>("seq_linebuffer", 60);
}

// ------------------------------------------------------------------
// Sequential-state protocol semantics
// ------------------------------------------------------------------

/// Hidden internal state, NOT declared: eval_comb() mirrors a counter
/// on_clock() mutates behind the signal graph's back.
struct OpaqueHiddenState : Module {
  Bus mirror{*this, "mirror", 16};
  int hidden_ = 0;

  OpaqueHiddenState() : Module(nullptr, "opaque") {}
  void eval_comb() override {
    mirror.write(static_cast<Word>(hidden_));
  }
  void on_clock() override { hidden_ += 3; }
  void on_reset() override { hidden_ = 0; }
};

TEST(SeqStateProtocol, OpaqueModuleStaysConservative) {
  OpaqueHiddenState top;
  Simulator sim(top);
  sim.reset();
  sim.step(5);
  // The conservative fallback re-evaluates the module after every edge,
  // so the hidden mutation is always observed...
  EXPECT_EQ(top.mirror.read(), 15u);
  // ...and no post-edge skip may ever happen in an all-opaque design.
  EXPECT_EQ(sim.stats().seq_skips, 0u);
}

/// The same hidden state, but *declared* and reported via seq_touch().
struct DeclaredHiddenState : Module {
  Bus mirror{*this, "mirror", 16};
  int hidden_ = 0;
  int active_edges_ = 6;  // mutate on the first 6 edges, then idle

  DeclaredHiddenState() : Module(nullptr, "declared") {}
  void eval_comb() override {
    mirror.write(static_cast<Word>(hidden_));
  }
  void on_clock() override {
    if (active_edges_ > 0) {
      --active_edges_;
      hidden_ += 3;
      seq_touch();
    }
  }
  void on_reset() override {
    hidden_ = 0;
    active_edges_ = 6;
  }
  void declare_state() override { declare_seq_state(); }
};

TEST(SeqStateProtocol, DeclaredModuleSkipsWhenSequentiallyIdle) {
  DeclaredHiddenState top;
  Simulator sim(top);
  sim.reset();
  sim.step(6);
  EXPECT_EQ(top.mirror.read(), 18u);
  const auto active = sim.stats();
  sim.step(10);  // sequential-idle: on_clock() runs but touches nothing
  EXPECT_EQ(top.mirror.read(), 18u);
  EXPECT_EQ(sim.stats().evals, active.evals)
      << "idle edges must not re-evaluate a declared module";
  EXPECT_EQ(sim.stats().seq_skips, active.seq_skips + 10);
  EXPECT_EQ(sim.stats().seq_touches, 6u);
}

/// A declared register signal: on_clock() writes only through it, so no
/// seq_touch() is needed and the fanout machinery carries the change.
struct DeclaredCounter : Counter {
  DeclaredCounter(Module* parent, std::string name, int width, Word max)
      : Counter(parent, std::move(name), width, max) {}
  void declare_state() override { register_seq(value); }
};

TEST(SeqStateProtocol, RegisteredSignalPropagatesThroughFanout) {
  for (const bool full_sweep : {false, true}) {
    DeclaredCounter top(nullptr, "cnt", 8, 4);
    Simulator sim(top, {.full_sweep = full_sweep});
    sim.reset();
    for (int i = 1; i <= 4; ++i) {
      sim.step();
      EXPECT_EQ(top.value.read(), static_cast<Word>(i));
      EXPECT_EQ(top.at_max.read(), i == 4);
    }
    sim.step();  // wraps to 0
    EXPECT_EQ(top.value.read(), 0u);
    EXPECT_FALSE(top.at_max.read());
  }
}

/// A module that *lies*: declares state but writes an unregistered
/// signal from on_clock().
struct LyingModule : Module {
  Bus out{*this, "out", 8};

  LyingModule() : Module(nullptr, "liar") {}
  void on_clock() override { out.write(out.read() + 1); }
  void declare_state() override { declare_seq_state(); }  // out missing
};

TEST(SeqStateProtocol, ContractViolationRaises) {
  LyingModule top;
  Simulator sim(top);  // check_seq_contract defaults to on
  sim.reset();
  EXPECT_THROW(sim.step(), ProtocolError);
}

TEST(SeqStateProtocol, ContractCheckCanBeDisabled) {
  LyingModule top;
  Simulator sim(top, {.check_seq_contract = false});
  sim.reset();
  // Still *correct* (the write reaches the pending list like any other);
  // the check only enforces that declarations stay complete.
  sim.step(3);
  EXPECT_EQ(top.out.read(), 3u);
}

TEST(SeqStateProtocol, DesignsAreFullyDeclared) {
  // Every module of every shipped design declares its sequential state:
  // the conservative opaque sweep never fires.
  const std::pair<std::string, Factory> designs[] = {
      {"saa2vga_pattern",
       [] {
         return designs::make_saa2vga_pattern(
             {.width = 16, .height = 12, .buffer_depth = 64, .frames = 1});
       }},
      {"blur_pattern",
       [] {
         return designs::make_blur_pattern(
             {.width = 16, .height = 12, .frames = 1});
       }},
  };
  for (const auto& [label, make] : designs) {
    auto d = make();
    Simulator sim(*d);
    d->visit([&](const rtl::Module& m) {
      EXPECT_FALSE(m.opaque_state())
          << label << ": module '" << m.full_name()
          << "' has no sequential-state declaration";
    });
    sim.reset();
    EXPECT_TRUE(sim.run([&] { return d->finished(); }, kMaxCycles).ok())
        << label << ": " << sim.progress_report();
    EXPECT_GT(sim.stats().seq_skips, 0u) << label;
  }
}

}  // namespace
}  // namespace hwpat
