// Differential tests of the event-driven simulation kernel against the
// full-sweep reference kernel: every shipped design must produce the
// same cycle count, the same output frames and a byte-identical VCD
// trace under both schedulers, combinational loops must be detected in
// both modes, and the event-driven kernel must actually do less work.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>

#include "designs/design.hpp"
#include "designs/saa2vga_shared.hpp"
#include "rtl/simulator.hpp"

namespace hwpat {
namespace {

using designs::BlurConfig;
using designs::Saa2VgaConfig;
using designs::VideoDesign;
using rtl::Simulator;

constexpr std::uint64_t kMaxCycles = 2'000'000;

std::string slurp_and_remove(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  in.close();
  std::remove(path.c_str());
  return ss.str();
}

struct RunResult {
  std::uint64_t cycles = 0;
  std::vector<video::Frame> frames;
  std::string vcd;
  Simulator::Stats stats;
};

RunResult run_design(VideoDesign& d, bool full_sweep,
                     const std::string& vcd_path) {
  Simulator sim(d, {.full_sweep = full_sweep});
  sim.open_vcd(vcd_path);
  sim.reset();
  sim.run_until([&] { return d.finished(); }, kMaxCycles);
  RunResult r;
  r.cycles = sim.cycle();
  r.frames = d.sink().frames();
  r.stats = sim.stats();
  return r;
}

using Factory = std::function<std::unique_ptr<VideoDesign>()>;

void expect_kernels_equivalent(const std::string& label,
                               const Factory& make) {
  // Two independent instances: module-internal state is per-instance.
  auto d_evt = make();
  auto d_ref = make();
  RunResult evt = run_design(*d_evt, false, label + "_evt.vcd");
  RunResult ref = run_design(*d_ref, true, label + "_ref.vcd");
  evt.vcd = slurp_and_remove(label + "_evt.vcd");
  ref.vcd = slurp_and_remove(label + "_ref.vcd");

  EXPECT_EQ(evt.cycles, ref.cycles) << label << ": cycle counts differ";
  EXPECT_EQ(evt.frames, ref.frames) << label << ": output frames differ";
  EXPECT_EQ(evt.vcd, ref.vcd) << label << ": VCD traces differ";
  // The point of the exercise: strictly fewer eval_comb() calls and
  // signal commits than the sweep kernel on any non-trivial design.
  EXPECT_LT(evt.stats.evals, ref.stats.evals) << label;
  EXPECT_LT(evt.stats.commits, ref.stats.commits) << label;
}

TEST(SimKernelDiff, Saa2VgaPatternFifo) {
  expect_kernels_equivalent("diff_saa2vga_pat_fifo", [] {
    return designs::make_saa2vga_pattern(
        {.width = 24, .height = 18, .buffer_depth = 64, .frames = 2});
  });
}

TEST(SimKernelDiff, Saa2VgaPatternSram) {
  expect_kernels_equivalent("diff_saa2vga_pat_sram", [] {
    return designs::make_saa2vga_pattern(
        {.width = 24, .height = 18, .buffer_depth = 64,
         .device = devices::DeviceKind::Sram, .frames = 2});
  });
}

TEST(SimKernelDiff, Saa2VgaCustomFifo) {
  expect_kernels_equivalent("diff_saa2vga_cus_fifo", [] {
    return designs::make_saa2vga_custom(
        {.width = 24, .height = 18, .buffer_depth = 64, .frames = 2});
  });
}

TEST(SimKernelDiff, Saa2VgaCustomSram) {
  expect_kernels_equivalent("diff_saa2vga_cus_sram", [] {
    return designs::make_saa2vga_custom(
        {.width = 24, .height = 18, .buffer_depth = 64,
         .device = devices::DeviceKind::Sram, .frames = 2});
  });
}

TEST(SimKernelDiff, Saa2VgaSharedSram) {
  expect_kernels_equivalent("diff_saa2vga_shared", [] {
    return designs::make_saa2vga_shared(
        {.width = 16, .height = 12, .buffer_depth = 64, .frames = 2});
  });
}

TEST(SimKernelDiff, BlurPattern) {
  expect_kernels_equivalent("diff_blur_pat", [] {
    return designs::make_blur_pattern(
        {.width = 24, .height = 18, .frames = 2});
  });
}

TEST(SimKernelDiff, BlurCustom) {
  expect_kernels_equivalent("diff_blur_cus", [] {
    return designs::make_blur_custom(
        {.width = 24, .height = 18, .frames = 2});
  });
}

// ------------------------------------------------------------------
// Failure-mode and boundary parity
// ------------------------------------------------------------------

/// Intentional combinational feedback: x = x + 1.
class CombLoop : public rtl::Module {
 public:
  explicit CombLoop(Module* parent)
      : Module(parent, "loop"), x(*this, "x", 8) {}
  void eval_comb() override { x.write(x.read() + 1); }
  rtl::Bus x;
};

TEST(SimKernelDiff, CombLoopRaisesInBothModes) {
  for (const bool full_sweep : {false, true}) {
    CombLoop top(nullptr);
    Simulator sim(top, {.full_sweep = full_sweep});
    EXPECT_THROW(sim.settle(), CombLoopError)
        << (full_sweep ? "full_sweep" : "event");
  }
}

TEST(SimKernelDiff, CombLoopRaisesAfterClockEdgeInBothModes) {
  for (const bool full_sweep : {false, true}) {
    CombLoop top(nullptr);
    Simulator sim(top, {.full_sweep = full_sweep});
    EXPECT_THROW(sim.step(), CombLoopError)
        << (full_sweep ? "full_sweep" : "event");
  }
}

/// A registered counter with combinational "is-max" flag.
class Counter : public rtl::Module {
 public:
  Counter(Module* parent, std::string name, int width, Word max)
      : Module(parent, std::move(name)),
        max_(max),
        value(*this, "value", width),
        at_max(*this, "at_max") {}

  void eval_comb() override { at_max.write(value.read() == max_); }
  void on_clock() override {
    value.write(value.read() == max_ ? 0 : value.read() + 1);
  }

  Word max_;
  rtl::Bus value;
  rtl::Bit at_max;
};

TEST(SimKernelDiff, RunUntilSucceedsExactlyAtMaxCycles) {
  Counter top(nullptr, "cnt", 8, 255);
  Simulator sim(top);
  sim.reset();
  // The condition becomes true on the 5th edge and max_cycles is 5:
  // that is a success, not a timeout.
  EXPECT_EQ(sim.run_until([&] { return top.value.read() == 5; }, 5), 5u);
}

TEST(SimKernelDiff, RunUntilTimeoutMentionsCycle) {
  Counter top(nullptr, "cnt", 8, 255);
  Simulator sim(top);
  sim.reset();
  sim.step(3);
  try {
    sim.run_until([] { return false; }, 7);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    // 3 pre-steps + 7 budget = timeout reported at cycle 10.
    EXPECT_NE(std::string(e.what()).find("cycle 10"), std::string::npos)
        << e.what();
  }
}

TEST(SimKernelDiff, TestbenchWritesPropagateWithoutClock) {
  for (const bool full_sweep : {false, true}) {
    Counter top(nullptr, "cnt", 8, 3);
    Simulator sim(top, {.full_sweep = full_sweep});
    sim.reset();
    EXPECT_FALSE(top.at_max.read());
    top.value.write(3);  // testbench poke, no clock edge
    sim.settle();
    EXPECT_TRUE(top.at_max.read())
        << (full_sweep ? "full_sweep" : "event");
  }
}

TEST(SimKernelDiff, SequentialSimulatorsRebindCleanly) {
  Counter top(nullptr, "cnt", 8, 255);
  {
    Simulator sim(top);
    sim.reset();
    sim.step(4);
    EXPECT_EQ(top.value.read(), 4u);
  }
  Simulator sim2(top, {.full_sweep = true});
  sim2.reset();
  sim2.step(2);
  EXPECT_EQ(top.value.read(), 2u);
}

}  // namespace
}  // namespace hwpat
