// Crash-consistent checkpoint/restore with deterministic replay.
//
// These tests pin the Snapshot subsystem contract on a small hand-made
// multi-clock design:
//
//   * save -> restore -> save is bit-stable, including across
//     independently constructed simulator instances;
//   * a run restored from a snapshot replays byte-identically (values,
//     counters, VCD bytes) to the uninterrupted run;
//   * Simulator::reset() after a restore returns to construction-time
//     values — even internal module state that on_reset() deliberately
//     leaves alone — so reset-after-restore equals a fresh construct;
//   * corrupted blobs (truncated, bad magic, wrong version, topology
//     mismatch) fail loudly with actionable messages and never leave
//     the simulator half-restored;
//   * save/restore from inside a simulator callback is refused;
//   * the elaboration-time declare_comb_only() contract check rejects
//     comb-only modules with a sequential process;
//   * the fault-injection engine (Options::fault_plan) fires at each
//     event-loop point: check/edge faults abort transactionally and
//     the retried step continues as if nothing happened; settle/commit
//     faults leave a half-applied state that save_snapshot() refuses
//     and restore_snapshot()/reset() both recover from.
//
// The randomized cross-kernel half of this story lives in
// test_fuzz_kernel.cpp (SnapshotFaultRestoreReplaysByteIdentically).
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <string>
#include <type_traits>
#include <vector>

#include "devices/fifo.hpp"
#include "rtl/clock.hpp"
#include "rtl/simulator.hpp"
#include "tb_util.hpp"

namespace hwpat {
namespace {

using ::testing::HasSubstr;
using rtl::Bit;
using rtl::Bus;
using rtl::ClockDomain;
using rtl::Module;
using rtl::Simulator;

static_assert(std::is_base_of_v<Error, rtl::FaultInjected>,
              "FaultInjected must be catchable as Error");

/// Register counter: out <= out + 1 on every edge of its domain.
struct SnapCounter : Module {
  Bus& out;
  SnapCounter(Module* parent, std::string name, Bus& o)
      : Module(parent, std::move(name)), out(o) {}
  void on_clock() override { out.write(out.read() + 1); }
  void declare_state() override { register_seq(out); }
};

/// Internal C++ state in both flavors: `acc` is ordinary sequential
/// state (on_reset() clears it), `epoch` is construction-time state
/// that on_reset() deliberately leaves alone — the module that proves
/// reset-after-restore reloads the construction baseline instead of
/// trusting on_reset() alone.
struct Sticky : Module {
  Bus& out;
  const Bus& in;
  Word acc = 0;
  Word epoch = 1;
  Sticky(Module* parent, std::string name, Bus& o, const Bus& i)
      : Module(parent, std::move(name)), out(o), in(i) {}
  void eval_comb() override { out.write(acc ^ epoch); }
  void on_clock() override {
    acc += in.read();
    epoch = epoch * 3 + 1;
    seq_touch();
  }
  void on_reset() override { acc = 0; }  // epoch intentionally kept
  void declare_state() override { declare_seq_state(); }
  void save_state(rtl::StateWriter& w) const override {
    w.word(acc);
    w.word(epoch);
  }
  void load_state(rtl::StateReader& r) override {
    acc = r.word();
    epoch = r.word();
  }
};

/// Self-driving strict-FIFO traffic: enables gated on the flags, so
/// the strict device never throws — the FIFO's internal ring state
/// (head/count/storage) still churns every cycle.
struct SnapDriver : Module {
  const Bus& cnt;
  const Bit& full;
  const Bit& empty;
  Bit& wr_en;
  Bit& rd_en;
  Bus& wr_data;
  SnapDriver(Module* parent, std::string name, const Bus& c, const Bit& f,
             const Bit& e, Bit& we, Bit& re, Bus& wd)
      : Module(parent, std::move(name)),
        cnt(c),
        full(f),
        empty(e),
        wr_en(we),
        rd_en(re),
        wr_data(wd) {}
  void eval_comb() override {
    wr_en.write(!full.read() && (cnt.read() & 1) != 0);
    rd_en.write(!empty.read() && (cnt.read() & 2) != 0);
    wr_data.write(cnt.read() * 5 + 1);
  }
  void declare_state() override { declare_comb_only(); }
};

/// Two-domain top: a fast counter feeding a strict FIFO through a
/// gated driver, a Sticky accumulator, and a slow-domain counter.
/// `width` parameterizes the data path so two instances with different
/// widths elaborate to different topology hashes.
struct SnapTop : Module {
  ClockDomain fast{"fast", 1};
  ClockDomain slow{"slow", 3};

  Bus cnt{*this, "cnt", 12};
  Bus scnt{*this, "scnt", 12};
  Bus sticky_out{*this, "sticky_out", 12};
  Bit wr_en{*this, "wr_en"};
  Bit rd_en{*this, "rd_en"};
  Bit empty{*this, "empty"};
  Bit full{*this, "full"};
  Bus wr_data;
  Bus rd_data;
  Bus level{*this, "level", 8};

  SnapCounter fast_cnt{this, "fast_cnt", cnt};
  SnapCounter slow_cnt{this, "slow_cnt", scnt};
  Sticky sticky{this, "sticky", sticky_out, cnt};
  SnapDriver driver{this,  "driver", cnt,   full,
                    empty, wr_en,    rd_en, wr_data};
  devices::FifoCore fifo;

  explicit SnapTop(int width = 8)
      : Module(nullptr, "snaptop"),
        wr_data(*this, "wr_data", width),
        rd_data(*this, "rd_data", width),
        fifo(this, "fifo", {.width = width, .depth = 4, .strict = true},
             {wr_en, wr_data, rd_en, rd_data, empty, full, level}) {
    set_clock_domain(&fast);
    slow_cnt.set_clock_domain(&slow);
  }
  void declare_state() override { declare_seq_state(); }
};

/// Externally visible end-state, minus the settle-effort counters
/// (an aborted-and-retried clock event legitimately re-settles, so
/// evals/settles are not part of the transactional guarantee).
struct Observed {
  std::uint64_t cycle = 0, tick = 0;
  std::uint64_t steps = 0, edges = 0, seq_touches = 0;
  std::vector<std::uint64_t> domain_edges;
  Word cnt = 0, scnt = 0, sticky_out = 0, rd_data = 0, level = 0;

  static Observed of(const Simulator& sim, const SnapTop& d) {
    const auto& s = sim.stats();
    return Observed{sim.cycle(),       sim.now(),
                    s.steps,           s.edges,
                    s.seq_touches,     s.domain_edges,
                    d.cnt.read(),      d.scnt.read(),
                    d.sticky_out.read(), d.rd_data.read(),
                    d.level.read()};
  }
  friend bool operator==(const Observed&, const Observed&) = default;
};

void run_steps(Simulator& sim, int n) {
  for (int i = 0; i < n; ++i) sim.step();
}

// ---------------------------------------------------------------------
// Round trip and replay
// ---------------------------------------------------------------------

TEST(Snapshot, RoundTripIsBitStable) {
  SnapTop top;
  Simulator sim(top, {});
  sim.reset();
  run_steps(sim, 10);
  const rtl::Snapshot blob = sim.save_snapshot();
  EXPECT_FALSE(blob.empty());
  sim.restore_snapshot(blob);
  const rtl::Snapshot again = sim.save_snapshot();
  EXPECT_EQ(blob, again) << "save -> restore -> save must be bit-stable";
}

TEST(Snapshot, RestoredReplayMatchesUninterruptedRun) {
  // Uninterrupted reference, with the VCD covering the second half.
  SnapTop a;
  rtl::Snapshot blob;
  Observed want;
  std::string want_vcd;
  {
    Simulator sim(a, {});
    sim.reset();
    run_steps(sim, 7);
    blob = sim.save_snapshot();
    sim.open_vcd("snap_ref.vcd");
    run_steps(sim, 13);
    want = Observed::of(sim, a);
  }
  want_vcd = tb::slurp_and_remove("snap_ref.vcd");

  // A freshly constructed instance restores the blob — no reset, no
  // warm-up — and must replay the same second half byte for byte.
  SnapTop b;
  Observed got;
  {
    Simulator sim(b, {});
    sim.restore_snapshot(blob);
    const rtl::Snapshot again = sim.save_snapshot();
    EXPECT_EQ(blob, again) << "cross-instance restore must round-trip";
    sim.open_vcd("snap_rep.vcd");
    run_steps(sim, 13);
    got = Observed::of(sim, b);
  }
  EXPECT_EQ(got, want);
  EXPECT_EQ(tb::slurp_and_remove("snap_rep.vcd"), want_vcd)
      << "replayed VCD bytes differ";
}

TEST(Snapshot, ResetAfterRestoreEqualsFreshConstruct) {
  // Fresh construct + reset: the canonical post-reset trajectory.
  SnapTop a;
  Observed want;
  {
    Simulator sim(a, {});
    sim.reset();
    sim.open_vcd("snap_fresh.vcd");
    run_steps(sim, 12);
    want = Observed::of(sim, a);
  }
  const std::string want_vcd = tb::slurp_and_remove("snap_fresh.vcd");

  // Run, snapshot, run further, restore, reset.  Sticky::epoch has
  // been mutated and restored to a mid-run value by then, and
  // on_reset() does not touch it — only the construction-state
  // baseline reload inside reset() can make this trajectory match.
  SnapTop b;
  Observed got;
  {
    Simulator sim(b, {});
    sim.reset();
    run_steps(sim, 9);
    const rtl::Snapshot blob = sim.save_snapshot();
    run_steps(sim, 5);
    sim.restore_snapshot(blob);
    sim.reset();
    sim.reset_stats();  // counters are cumulative across resets
    sim.open_vcd("snap_reset.vcd");
    run_steps(sim, 12);
    got = Observed::of(sim, b);
  }
  EXPECT_EQ(got, want);
  EXPECT_EQ(tb::slurp_and_remove("snap_reset.vcd"), want_vcd)
      << "reset-after-restore VCD differs from fresh-construct VCD";
}

// ---------------------------------------------------------------------
// Corrupted blobs
// ---------------------------------------------------------------------

TEST(Snapshot, TruncatedBlobThrowsAndSimulatorStaysUsable) {
  SnapTop top;
  Simulator sim(top, {});
  sim.reset();
  run_steps(sim, 5);
  const rtl::Snapshot blob = sim.save_snapshot();
  const auto& bytes = blob.bytes();
  ASSERT_GT(bytes.size(), 32u);

  // Header truncations fail before any mutation: the simulator state
  // is untouched and still serializes to the original blob.
  for (const std::size_t len : {std::size_t{0}, std::size_t{3},
                                std::size_t{7}, std::size_t{13}}) {
    SCOPED_TRACE("len=" + std::to_string(len));
    const rtl::Snapshot cut(
        std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + len));
    EXPECT_THROW(sim.restore_snapshot(cut), Error);
    EXPECT_EQ(sim.save_snapshot(), blob) << "failed restore mutated state";
  }

  // Body truncations are detected mid-restore: the simulator falls
  // back to construction state (and says so) instead of staying
  // half-restored — after which a valid restore works again.
  for (const std::size_t len : {bytes.size() / 2, bytes.size() - 1}) {
    SCOPED_TRACE("len=" + std::to_string(len));
    const rtl::Snapshot cut(
        std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + len));
    try {
      sim.restore_snapshot(cut);
      FAIL() << "truncated blob must throw";
    } catch (const Error& e) {
      EXPECT_THAT(std::string(e.what()), HasSubstr("truncated"));
      EXPECT_THAT(std::string(e.what()),
                  HasSubstr("reset to construction state"));
    }
    sim.restore_snapshot(blob);
    EXPECT_EQ(sim.save_snapshot(), blob);
  }
}

TEST(Snapshot, BadMagicAndVersionThrowBeforeMutation) {
  SnapTop top;
  Simulator sim(top, {});
  sim.reset();
  run_steps(sim, 4);
  const rtl::Snapshot blob = sim.save_snapshot();

  auto corrupt = [&](std::size_t at, std::uint8_t v) {
    std::vector<std::uint8_t> b = blob.bytes();
    b[at] = v;
    return rtl::Snapshot(std::move(b));
  };

  try {
    sim.restore_snapshot(corrupt(0, 'X'));
    FAIL() << "bad magic must throw";
  } catch (const Error& e) {
    EXPECT_THAT(std::string(e.what()), HasSubstr("bad magic"));
  }
  try {
    sim.restore_snapshot(corrupt(4, 99));  // version byte
    FAIL() << "unknown version must throw";
  } catch (const Error& e) {
    EXPECT_THAT(std::string(e.what()),
                HasSubstr("unsupported snapshot version 99"));
  }
  try {
    sim.restore_snapshot(corrupt(6, 0xAB));  // inside the topology hash
    FAIL() << "hash corruption must throw";
  } catch (const Error& e) {
    EXPECT_THAT(std::string(e.what()), HasSubstr("topology hash mismatch"));
  }
  // All three fail in header validation: nothing was mutated.
  EXPECT_EQ(sim.save_snapshot(), blob);
}

TEST(Snapshot, TopologyMismatchRejectsDifferentlyParameterizedDesign) {
  SnapTop narrow(8);
  SnapTop wide(9);
  Simulator sim_n(narrow, {});
  Simulator sim_w(wide, {});
  EXPECT_NE(sim_n.topology_hash(), sim_w.topology_hash());

  sim_n.reset();
  run_steps(sim_n, 6);
  const rtl::Snapshot blob = sim_n.save_snapshot();

  sim_w.reset();
  try {
    sim_w.restore_snapshot(blob);
    FAIL() << "width mismatch must throw";
  } catch (const Error& e) {
    EXPECT_THAT(std::string(e.what()), HasSubstr("topology hash mismatch"));
    EXPECT_THAT(std::string(e.what()), HasSubstr("snaptop"));
  }
  // The mismatch is detected in the header: sim_w keeps running.
  run_steps(sim_w, 3);
  EXPECT_EQ(sim_w.cycle(), 3u);

  // Same parameterization hashes (and restores) identically.
  SnapTop narrow2(8);
  Simulator sim_n2(narrow2, {});
  EXPECT_EQ(sim_n.topology_hash(), sim_n2.topology_hash());
  sim_n2.restore_snapshot(blob);
  EXPECT_EQ(sim_n2.save_snapshot(), blob);
}

// ---------------------------------------------------------------------
// Mid-event refusal
// ---------------------------------------------------------------------

/// Attempts a snapshot operation from inside its own on_clock().
struct Saboteur : Module {
  Bus& out;
  Simulator* sim = nullptr;
  int mode = 0;  ///< 0 = behave, 1 = try save, 2 = try restore
  rtl::Snapshot blob;
  std::string caught;
  Saboteur(Module* parent, std::string name, Bus& o)
      : Module(parent, std::move(name)), out(o) {}
  void on_clock() override {
    out.write(out.read() + 1);
    if (sim == nullptr || mode == 0) return;
    try {
      if (mode == 1) {
        (void)sim->save_snapshot();
      } else {
        sim->restore_snapshot(blob);
      }
      caught = "no throw";
    } catch (const Error& e) {
      caught = e.what();
    }
    mode = 0;
  }
  void declare_state() override { register_seq(out); }
};

TEST(Snapshot, SaveAndRestoreAreRefusedMidEvent) {
  struct Top : Module {
    Bus out{*this, "out", 16};
    Saboteur sab{this, "sab", out};
    Top() : Module(nullptr, "midevent") {}
    void declare_state() override { declare_seq_state(); }
  } top;

  Simulator sim(top, {});
  sim.reset();
  sim.step();
  top.sab.sim = &sim;
  top.sab.blob = sim.save_snapshot();

  top.sab.mode = 1;
  sim.step();
  EXPECT_THAT(top.sab.caught, HasSubstr("mid-event"));

  top.sab.mode = 2;
  sim.step();
  EXPECT_THAT(top.sab.caught, HasSubstr("mid-event"));

  // The refusals left the run intact: stepping and snapshotting still
  // work, and the counter saw every edge.
  sim.step();
  EXPECT_EQ(top.out.read(), 4u);
  EXPECT_FALSE(sim.save_snapshot().empty());
}

// ---------------------------------------------------------------------
// declare_comb_only() contract hardening
// ---------------------------------------------------------------------

/// Claims comb-only but overrides on_clock(): the declaration would
/// silently disable the sequential process.
struct BadCombClock : Module {
  int ticks = 0;
  using Module::Module;
  void on_clock() override { ++ticks; }
  void declare_state() override { declare_comb_only(); }
};

/// Claims comb-only but overrides on_clock_check().
struct BadCombCheck : Module {
  using Module::Module;
  void on_clock_check() const override {}
  void declare_state() override { declare_comb_only(); }
};

/// Claims comb-only but registers a sequential signal.
struct BadCombSeq : Module {
  Bus& out;
  BadCombSeq(Module* parent, std::string name, Bus& o)
      : Module(parent, std::move(name)), out(o) {}
  void declare_state() override {
    declare_comb_only();
    register_seq(out);
  }
};

TEST(Snapshot, CombOnlyContractRejectsSequentialProcesses) {
  {
    struct Top : Module {
      BadCombClock bad{this, "bad"};
      Top() : Module(nullptr, "combtop") {}
    } top;
    try {
      Simulator sim(top, {});
      FAIL() << "comb-only module overriding on_clock() must be rejected";
    } catch (const Error& e) {
      EXPECT_THAT(std::string(e.what()), HasSubstr("combtop.bad"));
      EXPECT_THAT(std::string(e.what()), HasSubstr("on_clock()"));
    }
    // Elaboration failed cleanly: the same design binds fine with the
    // debug check disabled.
    Simulator::Options relaxed_opts;
    relaxed_opts.check_seq_contract = false;
    Simulator relaxed(top, relaxed_opts);
    relaxed.reset();
    relaxed.step();
  }
  {
    struct Top : Module {
      BadCombCheck bad{this, "bad"};
      Top() : Module(nullptr, "combtop") {}
    } top;
    try {
      Simulator sim(top, {});
      FAIL() << "comb-only module overriding on_clock_check() must be "
                "rejected";
    } catch (const Error& e) {
      EXPECT_THAT(std::string(e.what()), HasSubstr("combtop.bad"));
      EXPECT_THAT(std::string(e.what()), HasSubstr("on_clock_check()"));
    }
  }
  {
    struct Top : Module {
      Bus w{*this, "w", 8};
      BadCombSeq bad{this, "bad", w};
      Top() : Module(nullptr, "combtop") {}
    } top;
    try {
      Simulator sim(top, {});
      FAIL() << "comb-only module with register_seq() must be rejected";
    } catch (const Error& e) {
      EXPECT_THAT(std::string(e.what()), HasSubstr("combtop.bad"));
      EXPECT_THAT(std::string(e.what()), HasSubstr("register_seq"));
    }
  }
}

// ---------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------

TEST(Snapshot, FaultPlanGrammar) {
  EXPECT_FALSE(rtl::parse_fault_plan("").armed());
  const rtl::FaultPlan p = rtl::parse_fault_plan("settle@12+3");
  EXPECT_TRUE(p.armed());
  EXPECT_EQ(p.point, rtl::FaultPoint::Settle);
  EXPECT_EQ(p.step, 12u);
  EXPECT_EQ(p.skip, 3u);
  EXPECT_EQ(rtl::parse_fault_plan("check@0").skip, 0u);

  for (const char* bad :
       {"bogus@1", "check", "check@", "check@x", "check@1+", "check@1+y",
        "@5", "check@1 extra", "check@1+2+3"}) {
    SCOPED_TRACE(bad);
    try {
      (void)rtl::parse_fault_plan(bad);
      FAIL() << "malformed plan must throw";
    } catch (const Error& e) {
      EXPECT_THAT(std::string(e.what()), HasSubstr("grammar"));
      EXPECT_THAT(std::string(e.what()), HasSubstr(bad));
    }
  }
  // A malformed plan is rejected at elaboration, not mid-run.
  SnapTop top;
  EXPECT_THROW(Simulator sim(top, {.fault_plan = "oops@1"}), Error);
}

/// Check/edge faults strike before any state mutates: the event aborts
/// transactionally and a retried step() continues the run as if the
/// crash never happened.
void expect_clean_abort(const std::string& point) {
  SCOPED_TRACE("point=" + point);
  constexpr int kSteps = 10;
  SnapTop ctrl;
  Simulator ref(ctrl, {});
  ref.reset();
  run_steps(ref, kSteps);
  const Observed want = Observed::of(ref, ctrl);

  SnapTop top;
  Simulator sim(top, {.fault_plan = point + "@3"});
  sim.reset();
  EXPECT_FALSE(sim.fault_fired());
  int fired_at = -1;
  for (int i = 0; i < kSteps; ++i) {
    try {
      sim.step();
    } catch (const rtl::FaultInjected& e) {
      ASSERT_EQ(fired_at, -1) << "fault must be one-shot";
      fired_at = i;
      EXPECT_THAT(std::string(e.what()), HasSubstr(point));
      EXPECT_THAT(std::string(e.what()), HasSubstr("snaptop"));
      sim.step();  // the aborted event was a no-op: same tick re-fires
    }
  }
  EXPECT_GE(fired_at, 0) << "the armed fault never fired";
  EXPECT_TRUE(sim.fault_fired());
  EXPECT_EQ(Observed::of(sim, top), want);
  EXPECT_FALSE(sim.save_snapshot().empty());
}

TEST(Snapshot, CheckFaultAbortsTransactionally) { expect_clean_abort("check"); }
TEST(Snapshot, EdgeFaultAbortsTransactionally) { expect_clean_abort("edge"); }

/// Settle/commit faults strike mid-mutation: the kernel must flag the
/// half-applied state, refuse to snapshot it, and recover through
/// restore_snapshot() — after which the replay matches the run that
/// never crashed.
void expect_crash_recovery(const std::string& point) {
  SCOPED_TRACE("point=" + point);
  constexpr int kSteps = 12;
  SnapTop ctrl;
  Simulator ref(ctrl, {});
  ref.reset();
  run_steps(ref, kSteps);
  const Observed want = Observed::of(ref, ctrl);

  SnapTop top;
  Simulator sim(top, {.fault_plan = point + "@4"});
  sim.reset();
  rtl::Snapshot good = sim.save_snapshot();
  int done = 0;
  bool crashed = false;
  while (done < kSteps) {
    try {
      sim.step();
      ++done;
      good = sim.save_snapshot();
    } catch (const rtl::FaultInjected&) {
      crashed = true;
      break;
    }
  }
  ASSERT_TRUE(crashed) << "the armed fault never fired";
  // Half-applied state: snapshotting is refused with a way out.
  try {
    (void)sim.save_snapshot();
    FAIL() << "save_snapshot after a mid-" << point << " crash must throw";
  } catch (const Error& e) {
    EXPECT_THAT(std::string(e.what()),
                HasSubstr("restore_snapshot() or reset()"));
  }
  sim.restore_snapshot(good);
  for (; done < kSteps; ++done) sim.step();
  EXPECT_EQ(Observed::of(sim, top), want);
}

TEST(Snapshot, SettleFaultRecoversThroughRestore) {
  expect_crash_recovery("settle");
}
TEST(Snapshot, CommitFaultRecoversThroughRestore) {
  expect_crash_recovery("commit");
}

TEST(Snapshot, CrashRecoversThroughResetToo) {
  SnapTop ctrl;
  Simulator ref(ctrl, {});
  ref.reset();
  run_steps(ref, 8);
  const Observed want = Observed::of(ref, ctrl);

  SnapTop top;
  Simulator sim(top, {.fault_plan = "commit@2"});
  sim.reset();
  bool crashed = false;
  try {
    run_steps(sim, 8);
  } catch (const rtl::FaultInjected&) {
    crashed = true;
  }
  ASSERT_TRUE(crashed);
  sim.reset();  // full reset is the other recovery path
  sim.reset_stats();  // counters are cumulative; restart the tally too
  run_steps(sim, 8);
  EXPECT_EQ(Observed::of(sim, top), want);
}

// ---------------------------------------------------------------------
// Format stability across the SoA kernel-layout refactor
// ---------------------------------------------------------------------

#include "data/snapshot_prerefactor_snaptop.inc"

rtl::Snapshot pre_refactor_blob() {
  return rtl::Snapshot(std::vector<std::uint8_t>(
      kPreRefactorSnapTopBlob,
      kPreRefactorSnapTopBlob + sizeof(kPreRefactorSnapTopBlob)));
}

TEST(Snapshot, PreRefactorBlobRestoresIntoFreshInstanceAndReplays) {
  // Uninterrupted reference: the exact run the fixture blob froze at
  // step 10 of, continued for 13 more steps with the VCD covering the
  // continuation.
  SnapTop a;
  Observed want;
  {
    Simulator sim(a, {});
    sim.reset();
    run_steps(sim, 10);
    sim.open_vcd("snap_pre_ref.vcd");
    run_steps(sim, 13);
    want = Observed::of(sim, a);
  }
  const std::string want_vcd = tb::slurp_and_remove("snap_pre_ref.vcd");

  // A blob captured by the pre-refactor (AoS signal layout) kernel
  // must restore into a freshly constructed SoA-layout instance...
  SnapTop b;
  Observed got;
  std::string got_vcd;
  {
    Simulator sim(b, {});
    sim.restore_snapshot(pre_refactor_blob());
    EXPECT_EQ(sim.cycle(), 10u);
    EXPECT_EQ(sim.now(), 10u);
    // ...re-save byte-identically (same version-1 format: scheduler,
    // stats, values, learned fanout in the same list order)...
    EXPECT_EQ(sim.save_snapshot(), pre_refactor_blob())
        << "SoA re-save is not byte-identical to the pre-refactor blob";
    // ...and replay the continuation exactly as the old kernel did.
    sim.open_vcd("snap_pre_got.vcd");
    run_steps(sim, 13);
    got = Observed::of(sim, b);
  }
  got_vcd = tb::slurp_and_remove("snap_pre_got.vcd");
  EXPECT_EQ(got, want);
  EXPECT_EQ(got_vcd, want_vcd)
      << "replay from the pre-refactor blob diverged from the "
         "uninterrupted run";
}

TEST(Snapshot, CorruptedPreRefactorBlobRejectsLoudlyNeverHalfRestores) {
  SnapTop ctrl;
  Simulator ref(ctrl, {});
  ref.reset();
  run_steps(ref, 6);
  const Observed want = Observed::of(ref, ctrl);

  SnapTop top;
  Simulator sim(top, {});
  sim.reset();
  run_steps(sim, 3);
  std::vector<std::uint8_t> bytes = pre_refactor_blob().bytes();
  bytes.resize(bytes.size() - 9);  // tear mid module-payload section
  try {
    sim.restore_snapshot(rtl::Snapshot(std::move(bytes)));
    FAIL() << "expected SnapshotError for a truncated blob";
  } catch (const Error& e) {
    EXPECT_THAT(e.what(), HasSubstr("reset to construction state"));
  }
  // Corruption detected after restoration began: the contract is a
  // reset to construction state, never a half-restore.  The simulator
  // must be immediately usable and deterministic.
  sim.reset();
  sim.reset_stats();
  run_steps(sim, 6);
  EXPECT_EQ(Observed::of(sim, top), want);
}

/// Minimal all-Word-signal design with one learned fanout arc, so a
/// test can compute the blob offset of the fanout section from the
/// documented layout and corrupt it surgically.
struct FanBlobTop : Module {
  Bus x{*this, "x", 16};
  Bus y{*this, "y", 16};
  struct Reader : Module {
    const Bus& in;
    Bus& out;
    Reader(Module* parent, const Bus& i, Bus& o)
        : Module(parent, "reader"), in(i), out(o) {}
    void eval_comb() override { out.write(in.read() + 7); }
    void declare_state() override { declare_comb_only(); }
  };
  Reader r{this, x, y};

  FanBlobTop() : Module(nullptr, "fantop") {}
  void on_clock() override { x.write(x.read() + 1); }
  void on_reset() override { x.write(0); }
  void declare_state() override { register_seq(x); }
};

TEST(Snapshot, DuplicateFanoutEntryInBlobRejectsLoudly) {
  // The old pointer-vector restore silently tolerated a duplicated
  // module id inside one signal's fanout list (it only bloated the
  // list); the CSR rebuild detects it via mod_mark_ and must refuse.
  FanBlobTop top;
  Simulator sim(top, {});
  sim.reset();
  run_steps(sim, 3);
  std::vector<std::uint8_t> bytes = sim.save_snapshot().bytes();

  // v1 layout up to the fanout section, for a single-domain design
  // whose signals are all Words: magic(4) version(1) flags(1)
  // topology-hash(8) tick(8) cycle(8) next_edge(8 per domain)
  // stats(12 u64) domain_edges(u32 count + 8 per domain)
  // values(u32 count + 8 per signal).
  ASSERT_EQ(sim.domain_count(), 1u);
  const std::size_t nsig = 2;  // x, y — reader declares no signals
  const std::size_t fan_at =
      4 + 1 + 1 + 8 + 8 + 8 + 8 * 1 + 12 * 8 + (4 + 8 * 1) + (4 + 8 * nsig);
  ASSERT_LT(fan_at + 8, bytes.size());
  auto rd_u32 = [&](std::size_t at) {
    return static_cast<std::uint32_t>(bytes[at]) |
           static_cast<std::uint32_t>(bytes[at + 1]) << 8 |
           static_cast<std::uint32_t>(bytes[at + 2]) << 16 |
           static_cast<std::uint32_t>(bytes[at + 3]) << 24;
  };
  // Sanity-pin the computed offset before corrupting anything: signal
  // x has exactly one learned reader, and its id addresses a module.
  ASSERT_EQ(rd_u32(fan_at), 1u) << "fanout-section offset drifted";
  const std::uint32_t reader_id = rd_u32(fan_at + 4);
  ASSERT_LT(reader_id, 3u);

  // Duplicate the entry: count 1 -> 2, id listed twice.
  bytes[fan_at] = 2;
  bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(fan_at + 4),
               {bytes[fan_at + 4], bytes[fan_at + 5], bytes[fan_at + 6],
                bytes[fan_at + 7]});
  try {
    sim.restore_snapshot(rtl::Snapshot(std::move(bytes)));
    FAIL() << "expected SnapshotError for a duplicated fanout entry";
  } catch (const Error& e) {
    EXPECT_THAT(e.what(), HasSubstr("duplicate fanout module id"));
  }
  // Never half-restored: back to construction state and fully usable.
  sim.reset();
  run_steps(sim, 5);
  EXPECT_EQ(top.x.read(), 5u);
  EXPECT_EQ(top.y.read(), 12u);
}

}  // namespace
}  // namespace hwpat
