// Batch sweep service + run-outcome API redesign.
//
// What is pinned here:
//
//   * Simulator::run() reports Timeout/FaultLatched as *values* and
//     absorbs transactionally aborted injected faults (the retried
//     step continues bit-identically); the old throwing shim is
//     gone — progress_report() carries the diagnostic instead.
//   * Simulator::Options is validated at elaboration with messages
//     naming the offending field.
//   * SweepDriver::run(): per-variant results (counters AND VCD bytes)
//     are invariant under the worker count — gated at 1/2/4 over a
//     mixed single-clock/tri-clock grid from designs/variants.hpp.
//   * SweepDriver::run_forked(): every grid variant's snapshot-forked
//     branch replays byte-identically (counters + VCD bytes) to a
//     fresh run warmed to the same point; stimulus branches actually
//     diverge, and a stimulus branch equals a fresh run driven by the
//     same hook at the warmup point.
//   * Malformed sweeps/grids fail eagerly with field-naming messages.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "designs/variants.hpp"
#include "meta/sweep_grid.hpp"
#include "rtl/rtl.hpp"
#include "tb_util.hpp"

namespace hwpat {
namespace {

using ::testing::HasSubstr;
using rtl::Bit;
using rtl::Bus;
using rtl::Module;
using rtl::RunResult;
using rtl::RunStatus;
using rtl::Simulator;
using rtl::SweepBranch;
using rtl::SweepDriver;
using rtl::SweepJob;
using rtl::SweepOptions;
using rtl::SweepResult;

// ---------------------------------------------------------------------
// Run-outcome values (the run_until -> run redesign)
// ---------------------------------------------------------------------

/// Free-running counter used by the outcome tests.
struct TickCounter : Module {
  Bus out{*this, "out", 16};
  TickCounter() : Module(nullptr, "ticktop") {}
  void on_clock() override { out.write(out.read() + 1); }
  void declare_state() override { register_seq(out); }
};

TEST(RunResult, TimeoutIsAValueNotAThrow) {
  TickCounter top;
  Simulator sim(top);
  sim.reset();
  const RunStatus st = sim.run([] { return false; }, 25);
  EXPECT_EQ(st.result, RunResult::Timeout);
  EXPECT_EQ(st.steps, 25u);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(static_cast<bool>(st));
  EXPECT_EQ(std::string(to_string(st.result)), "timeout");
  EXPECT_EQ(top.out.read(), 25u);
}

TEST(RunResult, PredSatisfiedReportsStepsConsumed) {
  TickCounter top;
  Simulator sim(top);
  sim.reset();
  const RunStatus st = sim.run([&] { return top.out.read() == 10; }, 1000);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.steps, 10u);
}

TEST(RunResult, ProgressReportNamesTheStallPoint) {
  TickCounter top;
  Simulator sim(top);
  sim.reset();
  const RunStatus st = sim.run([] { return false; }, 5);
  EXPECT_EQ(st.result, RunResult::Timeout);
  EXPECT_THAT(sim.progress_report(), HasSubstr("cycle 5"));
}

TEST(RunResult, TransactionalFaultIsAbsorbedBitIdentically) {
  // Reference run without a fault plan.
  TickCounter ref;
  std::uint64_t want = 0;
  {
    Simulator sim(ref);
    sim.reset();
    EXPECT_TRUE(sim.run([] { return false; }, 40).result ==
                RunResult::Timeout);
    want = ref.out.read();
  }
  // A check-point fault aborts its event transactionally; run()
  // retries the tick and the outcome is bit-identical.
  TickCounter top;
  Simulator::Options opt;
  opt.fault_plan = "check@7";
  Simulator sim(top, opt);
  sim.reset();
  const RunStatus st = sim.run([] { return false; }, 40);
  EXPECT_EQ(st.result, RunResult::Timeout);
  EXPECT_EQ(st.steps, 40u);
  EXPECT_TRUE(sim.fault_fired());
  EXPECT_FALSE(sim.needs_recovery());
  EXPECT_EQ(top.out.read(), want);
  // step() without run()'s retry wrapper lets the same fault escape.
  TickCounter top2;
  Simulator sim2(top2, opt);
  sim2.reset();
  EXPECT_THROW(sim2.step(40), rtl::FaultInjected);
}

TEST(RunResult, LatchedFaultSurfacesAsFaultLatched) {
  TickCounter top;
  Simulator::Options opt;
  opt.fault_plan = "commit@5";
  Simulator sim(top, opt);
  sim.reset();
  const RunStatus st = sim.run([] { return false; }, 40);
  EXPECT_EQ(st.result, RunResult::FaultLatched);
  EXPECT_TRUE(sim.needs_recovery());
  // reset() recovers; the run can go again (plans fire once).
  sim.reset();
  EXPECT_FALSE(sim.needs_recovery());
  EXPECT_TRUE(sim.run([] { return false; }, 10).result ==
              RunResult::Timeout);
}

TEST(RunResult, DomainFilteredRunValidatesTheIndex) {
  TickCounter top;
  Simulator sim(top);
  sim.reset();
  try {
    (void)sim.run([] { return false; }, 5, 7);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_THAT(e.what(), HasSubstr("domain index 7"));
    EXPECT_THAT(e.what(), HasSubstr("out of range"));
  }
}

// ---------------------------------------------------------------------
// Options validation at elaboration
// ---------------------------------------------------------------------

TEST(OptionsValidation, MessagesNameTheField) {
  TickCounter top;
  const auto expect_names = [&](Simulator::Options opt, const char* field) {
    try {
      Simulator sim(top, opt);
      FAIL() << "expected Error naming " << field;
    } catch (const Error& e) {
      EXPECT_THAT(e.what(), HasSubstr(field));
    }
  };
  Simulator::Options bad;
  bad.delta_limit = 0;
  expect_names(bad, "delta_limit");
  bad = {};
  bad.tick_ps = -5;
  expect_names(bad, "tick_ps");
  bad = {};
  bad.threads = -1;
  expect_names(bad, "threads");
  bad = {};
  bad.fault_plan = "bogus@@";
  expect_names(bad, "fault_plan");
}

// ---------------------------------------------------------------------
// Sweep driver validation
// ---------------------------------------------------------------------

TEST(SweepValidation, DriverOptionsNameTheField) {
  try {
    SweepDriver bad({0, 100, ""});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_THAT(e.what(), HasSubstr("workers"));
  }
  try {
    SweepDriver bad({1, 0, ""});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_THAT(e.what(), HasSubstr("max_cycles"));
  }
}

TEST(SweepValidation, JobListMisuseFailsEagerly) {
  const SweepDriver driver({2, 100, ""});
  const auto build = [] {
    return std::unique_ptr<Module>(new TickCounter());
  };
  std::vector<SweepJob> dup(2);
  dup[0].name = dup[1].name = "same";
  dup[0].build = dup[1].build = build;
  EXPECT_THROW((void)driver.run(dup), Error);
  std::vector<SweepJob> null_build(1);
  null_build[0].name = "x";
  EXPECT_THROW((void)driver.run(null_build), Error);
}

TEST(SweepValidation, FailingVariantDoesNotAbortTheSweep) {
  const SweepDriver driver({2, 2000, ""});
  std::vector<SweepJob> jobs(2);
  jobs[0].name = "broken";
  jobs[0].build = []() -> std::unique_ptr<Module> {
    throw SpecError("deliberately broken variant");
  };
  jobs[1].name = "fine";
  jobs[1].build = [] { return std::unique_ptr<Module>(new TickCounter()); };
  const std::vector<SweepResult> rs = driver.run(jobs);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_FALSE(rs[0].ok);
  EXPECT_THAT(rs[0].error, HasSubstr("deliberately broken"));
  EXPECT_TRUE(rs[1].ok);
  EXPECT_EQ(rs[1].outcome, RunResult::PredSatisfied);  // fixed-length run
  EXPECT_EQ(rs[1].steps, 2000u);
}

// ---------------------------------------------------------------------
// Grid expansion (meta + designs glue)
// ---------------------------------------------------------------------

TEST(SweepGrid, EnumeratesRowMajorLastAxisFastest) {
  const std::vector<meta::SweepAxis> axes = {{"a", {"1", "2"}},
                                             {"b", {"x", "y", "z"}}};
  EXPECT_EQ(meta::grid_size(axes), 6u);
  const auto points = meta::enumerate_grid(axes);
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0].label, "1_x");
  EXPECT_EQ(points[1].label, "1_y");
  EXPECT_EQ(points[3].label, "2_x");
  EXPECT_EQ(points[4].at(axes, "b"), "y");
  EXPECT_THROW((void)points[0].at(axes, "nope"), SpecError);
}

TEST(SweepGrid, ValidationNamesTheAxis) {
  try {
    (void)meta::enumerate_grid({{"w", {"1"}}, {"w", {"2"}}});
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_THAT(e.what(), HasSubstr("duplicate axis 'w'"));
  }
  EXPECT_THROW((void)meta::enumerate_grid({}), SpecError);
  EXPECT_THROW((void)meta::enumerate_grid({{"w", {}}}), SpecError);
  EXPECT_THROW((void)meta::enumerate_grid({{"", {"1"}}}), SpecError);
}

TEST(SweepGrid, DesignGridsRejectImpossibleVariants) {
  designs::Saa2VgaSweepGrid bad;
  bad.widths = {64};
  bad.depths = {0};  // meta::validate: depth < 1
  EXPECT_THROW((void)designs::saa2vga_sweep(bad), SpecError);
  designs::TriClkSweepGrid badratio;
  badratio.ratios = {"5x2"};
  EXPECT_THROW((void)designs::saa2vga_triclk_sweep(badratio), SpecError);
  designs::TriClkSweepGrid badlanes;
  badlanes.lanes = {0};
  EXPECT_THROW((void)designs::saa2vga_triclk_sweep(badlanes), SpecError);
}

// ---------------------------------------------------------------------
// Worker-count invariance over a real design grid
// ---------------------------------------------------------------------

/// The small mixed grid the concurrency tests run: two single-clock
/// variants (fifo + sram) and one tri-clock variant.
std::vector<SweepJob> small_grid() {
  designs::Saa2VgaSweepGrid g1;
  g1.widths = {16};
  g1.depths = {256};
  std::vector<SweepJob> jobs = designs::saa2vga_sweep(g1);
  designs::TriClkSweepGrid g2;
  g2.ratios = {"3x1x2"};
  g2.lanes = {1};
  g2.width = 16;
  g2.height = 12;
  for (SweepJob& j : designs::saa2vga_triclk_sweep(g2))
    jobs.push_back(std::move(j));
  return jobs;
}

/// The per-variant fingerprint the invariance tests compare.
struct Fingerprint {
  std::string name;
  bool ok = false;
  RunResult outcome = RunResult::PredSatisfied;
  std::uint64_t steps = 0, cycles = 0, ticks = 0;
  std::uint64_t evals = 0, commits = 0, edges = 0, deltas = 0;
  std::vector<std::uint64_t> domain_edges;
  std::string vcd;
  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

  static Fingerprint of(const SweepResult& r, std::string vcd_bytes) {
    return {r.name,          r.ok,
            r.outcome,       r.steps,
            r.cycles,        r.ticks,
            r.stats.evals,   r.stats.commits,
            r.stats.edges,   r.stats.deltas,
            r.stats.domain_edges, std::move(vcd_bytes)};
  }
};

TEST(SweepDriver, ResultsAreInvariantUnderWorkerCount) {
  const std::vector<SweepJob> jobs = small_grid();
  std::vector<std::vector<Fingerprint>> by_workers;
  for (const int workers : {1, 2, 4}) {
    const SweepDriver driver({workers, 200000, "."});
    const std::vector<SweepResult> rs = driver.run(jobs);
    ASSERT_EQ(rs.size(), jobs.size());
    std::vector<Fingerprint> fps;
    for (const SweepResult& r : rs) {
      EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
      EXPECT_EQ(r.outcome, RunResult::PredSatisfied) << r.name;
      fps.push_back(
          Fingerprint::of(r, tb::slurp_and_remove("./" + r.name + ".vcd")));
    }
    by_workers.push_back(std::move(fps));
  }
  for (std::size_t w = 1; w < by_workers.size(); ++w)
    for (std::size_t i = 0; i < by_workers[0].size(); ++i)
      EXPECT_EQ(by_workers[w][i], by_workers[0][i])
          << "variant '" << by_workers[0][i].name
          << "' differs between worker counts";
}

// ---------------------------------------------------------------------
// Snapshot forking: branch == fresh, byte for byte, for every variant
// ---------------------------------------------------------------------

TEST(SweepFork, BranchReplaysByteIdenticallyToFreshRun) {
  constexpr std::uint64_t kWarmup = 120;
  constexpr std::uint64_t kBudget = 200000;
  for (SweepJob job : small_grid()) {
    job.warmup = kWarmup;
    // Fresh reference: same design, warmed to the same point, VCD
    // opened at the measurement point — what the fork must reproduce.
    Fingerprint want;
    {
      const SweepDriver driver({1, kBudget, "."});
      const std::vector<SweepResult> rs = driver.run({job});
      ASSERT_EQ(rs.size(), 1u);
      ASSERT_TRUE(rs[0].ok) << rs[0].name << ": " << rs[0].error;
      want = Fingerprint::of(
          rs[0], tb::slurp_and_remove("./" + job.name + ".vcd"));
    }
    // Forked run at workers 2: both branches must match the fresh run.
    rtl::Snapshot blob;
    const SweepDriver driver({2, kBudget, "."});
    const std::vector<SweepResult> rs =
        driver.run_forked(job, {{"b0", {}, {}, 0, ""}, {"b1", {}, {}, 0, ""}},
                          &blob);
    ASSERT_EQ(rs.size(), 2u);
    EXPECT_FALSE(blob.empty());
    for (const SweepResult& r : rs) {
      ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
      EXPECT_EQ(r.snapshot_bytes, blob.size_bytes());
      Fingerprint got = Fingerprint::of(
          r, tb::slurp_and_remove("./" + r.name + ".vcd"));
      got.name = want.name;  // "<base>.<branch>" vs base label
      EXPECT_EQ(got, want)
          << "branch '" << r.name << "' diverged from the fresh run";
    }
  }
}

// ---------------------------------------------------------------------
// Stimulus divergence through the fork API
// ---------------------------------------------------------------------

/// Counter with a top-level enable wire a branch stimulus can drive.
struct GatedCounter : Module {
  Bit en{*this, "en"};
  Bus out{*this, "out", 16};
  GatedCounter() : Module(nullptr, "gatedtop") {}
  void on_clock() override {
    if (en.read()) out.write(out.read() + 1);
  }
  void declare_state() override { register_seq(out); }
};

TEST(SweepFork, StimulusBranchesDivergeAndMatchEquivalentFreshRuns) {
  SweepJob base;
  base.name = "gated";
  base.build = [] { return std::unique_ptr<Module>(new GatedCounter()); };
  base.warmup = 10;
  const auto drive = [](bool on) {
    return [on](Module& top, Simulator&) {
      static_cast<GatedCounter&>(top).en.write(on);
    };
  };
  const SweepDriver driver({2, 50, ""});
  const std::vector<SweepResult> rs = driver.run_forked(
      base, {{"on", drive(true), {}, 0, ""}, {"off", drive(false), {}, 0, ""}});
  ASSERT_EQ(rs.size(), 2u);
  ASSERT_TRUE(rs[0].ok) << rs[0].error;
  ASSERT_TRUE(rs[1].ok) << rs[1].error;
  // Branches consumed the same budget but diverged in state: commit
  // changes count the enabled counter's increments.
  EXPECT_EQ(rs[0].steps, 50u);
  EXPECT_EQ(rs[1].steps, 50u);
  EXPECT_GT(rs[0].stats.commit_changes, rs[1].stats.commit_changes);
  // Each branch equals a fresh run driven by the same hook at the
  // warmup point (at_warmup is the branch-stimulus mirror).
  for (int on = 0; on < 2; ++on) {
    SweepJob fresh = base;
    fresh.at_warmup = drive(on != 0);
    const std::vector<SweepResult> f = driver.run({fresh});
    ASSERT_TRUE(f[0].ok) << f[0].error;
    const SweepResult& br = rs[on != 0 ? 0 : 1];
    EXPECT_EQ(f[0].steps, br.steps);
    EXPECT_EQ(f[0].cycles, br.cycles);
    EXPECT_EQ(f[0].stats.commit_changes, br.stats.commit_changes);
    EXPECT_EQ(f[0].stats.evals, br.stats.evals);
  }
}

TEST(SweepFork, BranchFaultPlanOverrideLatchesOnlyThatBranch) {
  SweepJob base;
  base.name = "faulty";
  base.build = [] { return std::unique_ptr<Module>(new TickCounter()); };
  base.warmup = 5;
  const SweepDriver driver({2, 30, ""});
  const std::vector<SweepResult> rs = driver.run_forked(
      base, {{"clean", {}, {}, 0, ""}, {"crash", {}, {}, 0, "commit@10"}});
  ASSERT_EQ(rs.size(), 2u);
  ASSERT_TRUE(rs[0].ok) << rs[0].error;
  ASSERT_TRUE(rs[1].ok) << rs[1].error;
  EXPECT_EQ(rs[0].outcome, RunResult::PredSatisfied);
  EXPECT_EQ(rs[0].steps, 30u);
  EXPECT_EQ(rs[1].outcome, RunResult::FaultLatched);
  EXPECT_LT(rs[1].steps, 30u);
}

}  // namespace
}  // namespace hwpat
