// Telemetry (rtl/trace.hpp): the wall-clock instruments must observe
// without perturbing.  What is pinned here:
//
//   * Zero-interference: with a profiling tracer attached, the
//     deterministic outputs — every Simulator::Stats counter and the
//     VCD byte stream — are identical to the untraced run, across both
//     kernels and across parallel-settle thread counts.
//   * Coverage: one span per kernel phase occurrence (edge events,
//     settles, reset, snapshot save/restore), time-ordered, on valid
//     lanes.
//   * Bounded memory: a tiny ring drops the oldest spans and counts
//     them; phase totals keep accumulating regardless.
//   * Per-module profiling: call counts match the deterministic eval
//     counter, and the hot-modules report names real module paths.
//   * Chrome-trace JSON: loadable shape (metadata + "X" events with
//     lane tids, the "hwpat" summary block).
//   * Sweep integration: SweepOptions::trace aggregates per-job span
//     counts and phase totals into SweepResult::telem; trace_dir
//     writes one trace file per job.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "designs/design.hpp"
#include "designs/saa2vga_triclk.hpp"
#include "rtl/rtl.hpp"
#include "tb_util.hpp"

namespace hwpat {
namespace {

using ::testing::HasSubstr;
using rtl::Module;
using rtl::ModuleProfile;
using rtl::Simulator;
using rtl::Tracer;
using rtl::TracePhase;
using rtl::TraceSpan;
using tb::slurp_and_remove;

void expect_stats_eq(const Simulator::Stats& a, const Simulator::Stats& b,
                     const std::string& label) {
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.settles, b.settles) << label;
  EXPECT_EQ(a.deltas, b.deltas) << label;
  EXPECT_EQ(a.evals, b.evals) << label;
  EXPECT_EQ(a.commits, b.commits) << label;
  EXPECT_EQ(a.commit_changes, b.commit_changes) << label;
  EXPECT_EQ(a.seq_touches, b.seq_touches) << label;
  EXPECT_EQ(a.seq_skips, b.seq_skips) << label;
  EXPECT_EQ(a.edges, b.edges) << label;
  EXPECT_EQ(a.act_skips, b.act_skips) << label;
  EXPECT_EQ(a.partition_settles, b.partition_settles) << label;
  EXPECT_EQ(a.partition_skips, b.partition_skips) << label;
  EXPECT_EQ(a.domain_edges, b.domain_edges) << label;
}

struct Out {
  Simulator::Stats stats;
  std::vector<video::Frame> frames;
  std::string vcd;
};

// ---------------------------------------------------------------------
// Zero-interference: tracer on vs off, both kernels
// ---------------------------------------------------------------------

TEST(Telemetry, TracerDoesNotPerturbStatsOrVcd) {
  const designs::Saa2VgaConfig cfg{.width = 12, .height = 8,
                                   .buffer_depth = 16,
                                   .device = devices::DeviceKind::FifoCore,
                                   .frames = 1};
  for (const bool full_sweep : {false, true}) {
    const std::string label =
        full_sweep ? std::string("full_sweep") : std::string("event");
    auto run = [&](bool traced) {
      auto d = designs::make_saa2vga_pattern(cfg);
      const std::string path =
          "telemetry_" + label + (traced ? "_on.vcd" : "_off.vcd");
      Out out;
      {
        Simulator sim(*d, {.full_sweep = full_sweep});
        if (traced) {
          Tracer::Options topt;
          topt.profile_modules = true;
          sim.trace_start(topt);
        }
        sim.open_vcd(path);
        sim.reset();
        EXPECT_TRUE(
            sim.run([&] { return d->finished(); }, 2'000'000).ok())
            << sim.progress_report();
        out.stats = sim.stats();
        if (traced) { EXPECT_GT(sim.telemetry()->span_count(), 0u); }
      }  // destroying the simulator flushes the VCD stream
      out.frames = d->sink().frames();
      out.vcd = slurp_and_remove(path);
      return out;
    };
    const Out off = run(false);
    const Out on = run(true);
    SCOPED_TRACE(label);
    expect_stats_eq(off.stats, on.stats, label);
    EXPECT_EQ(off.frames, on.frames) << label;
    EXPECT_EQ(off.vcd, on.vcd) << label;
  }
}

TEST(Telemetry, TracerDoesNotPerturbParallelSettle) {
  // Tri-clock farm: three settle partitions, so threads > 1 genuinely
  // engages the worker pool — each worker records on its own lane.
  const designs::Saa2VgaTriClkConfig cfg{.width = 8, .height = 6,
                                         .cdc_depth = 8, .frames = 1,
                                         .lanes = 3};
  auto run = [&](int threads, bool traced) {
    designs::Saa2VgaTriClk d(cfg);
    const std::string path = "telemetry_t" + std::to_string(threads) +
                             (traced ? "_on.vcd" : "_off.vcd");
    Out out;
    {
      Simulator sim(d, {.threads = threads});
      if (traced) sim.trace_start();
      sim.open_vcd(path);
      sim.reset();
      EXPECT_TRUE(
          sim.run([&] { return d.finished(); }, 2'000'000, 0).ok())
          << sim.progress_report();
      out.stats = sim.stats();
      if (traced) {
        // One lane per execution context: single-context for threads
        // 0/1, otherwise threads clamped to the three settle
        // partitions of the tri-clock design.
        const std::size_t want_lanes =
            threads > 1 ? std::min<std::size_t>(
                              static_cast<std::size_t>(threads), 3u)
                        : 1u;
        EXPECT_EQ(sim.telemetry()->lane_count(), want_lanes);
      }
    }
    out.frames = d.sink().frames();
    out.vcd = slurp_and_remove(path);
    return out;
  };
  const Out want = run(0, false);
  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const Out traced = run(threads, true);
    expect_stats_eq(want.stats, traced.stats,
                    "threads=" + std::to_string(threads));
    EXPECT_EQ(want.frames, traced.frames);
    EXPECT_EQ(want.vcd, traced.vcd);
  }
}

// ---------------------------------------------------------------------
// Span coverage and ordering
// ---------------------------------------------------------------------

TEST(Telemetry, SpansCoverKernelPhasesInTimeOrder) {
  auto d = designs::make_saa2vga_pattern(
      {.width = 8, .height = 6, .buffer_depth = 16,
       .device = devices::DeviceKind::FifoCore, .frames = 1});
  Simulator sim(*d);
  sim.trace_start();
  sim.reset();
  sim.step(50);
  const Tracer& t = *sim.telemetry();
  // Phase counts agree with the deterministic counters (checked before
  // the snapshot dance: restore_snapshot rolls the *counters* back to
  // the save point, while the tracer keeps its wall-clock history).
  EXPECT_EQ(t.phase_total(TracePhase::Reset).count, 1u);
  EXPECT_EQ(t.phase_total(TracePhase::EdgeEvent).count, sim.stats().steps);
  EXPECT_EQ(t.phase_total(TracePhase::Settle).count, sim.stats().settles);
  const rtl::Snapshot snap = sim.save_snapshot();
  sim.step(10);
  sim.restore_snapshot(snap);
  EXPECT_EQ(t.phase_total(TracePhase::SnapshotSave).count, 1u);
  EXPECT_EQ(t.phase_total(TracePhase::SnapshotRestore).count, 1u);
  EXPECT_GT(t.phase_total(TracePhase::EdgeEvent).count,
            sim.stats().steps);  // history survives the rollback
  // A snapshot span's arg is the blob size.
  bool saw_save = false;
  std::uint64_t prev_start = 0;
  for (const TraceSpan& s : t.spans()) {
    EXPECT_GE(s.start_ns, prev_start);  // spans() sorts by start time
    prev_start = s.start_ns;
    EXPECT_LT(s.lane, t.lane_count());
    if (s.phase == TracePhase::SnapshotSave) {
      saw_save = true;
      EXPECT_GT(s.arg, 0u);
    }
  }
  EXPECT_TRUE(saw_save);
  // trace_stop() detaches: the hooks are gone, the handle is null.
  sim.trace_stop();
  EXPECT_EQ(sim.telemetry(), nullptr);
  sim.step(5);
  EXPECT_THROW(sim.trace_write("unreachable.json"), Error);
}

TEST(Telemetry, BoundedRingDropsOldestAndCounts) {
  auto d = designs::make_saa2vga_pattern(
      {.width = 8, .height = 6, .buffer_depth = 16,
       .device = devices::DeviceKind::FifoCore, .frames = 1});
  Simulator sim(*d);
  Tracer::Options topt;
  topt.ring_capacity = 16;
  sim.trace_start(topt);
  sim.reset();
  sim.step(200);  // far more spans than the ring retains
  const Tracer& t = *sim.telemetry();
  EXPECT_GT(t.dropped(), 0u);
  EXPECT_LE(t.span_count(), 16u * t.lane_count());
  // Phase totals survive eviction: every edge is still accounted.
  EXPECT_EQ(t.phase_total(TracePhase::EdgeEvent).count, sim.stats().steps);
}

// ---------------------------------------------------------------------
// Per-module profiling
// ---------------------------------------------------------------------

TEST(Telemetry, HotModulesAttributeEvalAndClockCalls) {
  auto d = designs::make_saa2vga_pattern(
      {.width = 8, .height = 6, .buffer_depth = 16,
       .device = devices::DeviceKind::FifoCore, .frames = 1});
  Simulator sim(*d);
  Tracer::Options topt;
  topt.profile_modules = true;
  sim.trace_start(topt);
  sim.reset();
  ASSERT_TRUE(sim.run([&] { return d->finished(); }, 2'000'000).ok())
      << sim.progress_report();
  const Tracer& t = *sim.telemetry();
  const std::vector<ModuleProfile> hot = t.hot_modules(5);
  ASSERT_FALSE(hot.empty());
  EXPECT_LE(hot.size(), 5u);
  // Hottest first, and the profile totals fold every eval_comb() the
  // deterministic counter saw (summed over ALL modules, so compare
  // against the unbounded listing).
  for (std::size_t i = 1; i < hot.size(); ++i)
    EXPECT_GE(hot[i - 1].total_ns(), hot[i].total_ns());
  std::uint64_t eval_calls = 0;
  for (const ModuleProfile& m : t.hot_modules(1u << 20))
    eval_calls += m.eval_calls;
  EXPECT_EQ(eval_calls, sim.stats().evals);
  const std::string report = t.hot_modules_report(5);
  EXPECT_THAT(report, HasSubstr(hot.front().path));
  // Profiling off: no modules, empty report (fresh design — a module
  // tree binds to one simulator at a time).
  auto d2 = designs::make_saa2vga_pattern(
      {.width = 8, .height = 6, .buffer_depth = 16,
       .device = devices::DeviceKind::FifoCore, .frames = 1});
  Simulator plain(*d2);
  plain.trace_start();
  plain.reset();
  plain.step(5);
  EXPECT_TRUE(plain.telemetry()->hot_modules(5).empty());
  EXPECT_EQ(plain.telemetry()->hot_modules_report(5), "");
}

// ---------------------------------------------------------------------
// Chrome-trace JSON shape
// ---------------------------------------------------------------------

TEST(Telemetry, ChromeJsonHasLoadableShape) {
  auto d = designs::make_saa2vga_pattern(
      {.width = 8, .height = 6, .buffer_depth = 16,
       .device = devices::DeviceKind::FifoCore, .frames = 1});
  Simulator sim(*d);
  Tracer::Options topt;
  topt.profile_modules = true;
  sim.trace_start(topt);
  sim.reset();
  sim.step(40);
  std::ostringstream os;
  sim.telemetry()->write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_THAT(json, HasSubstr("\"traceEvents\""));
  EXPECT_THAT(json, HasSubstr("\"process_name\""));
  EXPECT_THAT(json, HasSubstr("\"thread_name\""));
  EXPECT_THAT(json, HasSubstr("\"ph\": \"X\""));
  EXPECT_THAT(json, HasSubstr("\"edge_event\""));
  EXPECT_THAT(json, HasSubstr("\"hwpat\""));
  EXPECT_THAT(json, HasSubstr("\"hot_modules\""));
  // Braces and brackets balance (the file parses as one JSON object).
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_str);
  // The file overload writes the same bytes.
  const std::string path = "telemetry_shape.trace.json";
  sim.trace_write(path);
  EXPECT_EQ(slurp_and_remove(path), json);
}

// ---------------------------------------------------------------------
// Sweep integration
// ---------------------------------------------------------------------

TEST(Telemetry, SweepAggregatesPerJobTelemetry) {
  rtl::SweepOptions sopt;
  sopt.workers = 2;
  sopt.max_cycles = 500;
  sopt.trace = true;
  const rtl::SweepDriver driver(sopt);
  std::vector<rtl::SweepJob> jobs(2);
  jobs[0].name = "a";
  jobs[1].name = "b";
  for (auto& j : jobs)
    j.build = [] {
      return std::unique_ptr<Module>(new designs::Saa2VgaTriClk(
          {.width = 8, .height = 6, .cdc_depth = 8, .frames = 1}));
    };
  const auto rs = driver.run(jobs);
  ASSERT_EQ(rs.size(), 2u);
  for (const rtl::SweepResult& r : rs) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.telem.spans, 0u) << r.name;
    EXPECT_GT(r.telem.settle_ns, 0u) << r.name;
    EXPECT_GT(r.telem.edge_ns, 0u) << r.name;
  }
  // Trace off (the default): no telemetry is gathered.
  rtl::SweepOptions plain;
  plain.workers = 2;
  plain.max_cycles = 500;
  const auto rs2 = rtl::SweepDriver(plain).run(jobs);
  ASSERT_EQ(rs2.size(), 2u);
  for (const rtl::SweepResult& r : rs2) EXPECT_EQ(r.telem.spans, 0u);
}

TEST(Telemetry, SweepTraceDirWritesOneFilePerJob) {
  rtl::SweepOptions sopt;
  sopt.workers = 2;
  sopt.max_cycles = 200;
  sopt.trace_dir = ".";  // implies trace
  const rtl::SweepDriver driver(sopt);
  std::vector<rtl::SweepJob> jobs(2);
  jobs[0].name = "tracedir_a";
  jobs[1].name = "tracedir_b";
  for (auto& j : jobs)
    j.build = [] {
      return std::unique_ptr<Module>(new designs::Saa2VgaTriClk(
          {.width = 8, .height = 6, .cdc_depth = 8, .frames = 1}));
    };
  const auto rs = driver.run(jobs);
  for (const rtl::SweepResult& r : rs) {
    ASSERT_TRUE(r.ok) << r.error;
    const std::string json = slurp_and_remove("./" + r.name +
                                              ".trace.json");
    EXPECT_THAT(json, HasSubstr("\"traceEvents\""));
    EXPECT_THAT(json, HasSubstr("\"sweep_job\""));
  }
}

}  // namespace
}  // namespace hwpat
