// Video substrate tests: frames, patterns, PNM round trips, and the
// VideoSource / VgaSink stream endpoints.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/stream_core.hpp"
#include "rtl/simulator.hpp"
#include "tb_util.hpp"
#include "video/frame.hpp"
#include "video/stream.hpp"

namespace hwpat::video {
namespace {

using rtl::Module;
using rtl::Simulator;

TEST(Frame, BasicAccessors) {
  Frame f(4, 3, 1, 7);
  EXPECT_EQ(f.width(), 4);
  EXPECT_EQ(f.height(), 3);
  EXPECT_EQ(f.pixel_bits(), 8);
  EXPECT_EQ(f.pixel_count(), 12u);
  EXPECT_EQ(f.at(2, 1), 7u);
  f.set(2, 1, 0x1FF);  // truncated to 8 bits
  EXPECT_EQ(f.at(2, 1), 0xFFu);
}

TEST(Frame, PatternsAreDeterministicAndDistinct) {
  EXPECT_EQ(noise(8, 8, 1), noise(8, 8, 1));
  EXPECT_NE(noise(8, 8, 1), noise(8, 8, 2));
  EXPECT_NE(gradient(8, 8), checkerboard(8, 8));
  const Frame b = bars(70, 4);
  EXPECT_EQ(b.at(0, 0), 235u);
  EXPECT_EQ(b.at(69, 3), 25u);
}

TEST(Frame, PnmGrayRoundTrip) {
  const Frame f = noise(13, 7, 3);
  const std::string path = "test_video_gray.pgm";
  save_pnm(f, path);
  EXPECT_EQ(load_pnm(path), f);
  std::remove(path.c_str());
}

TEST(Frame, PnmRgbRoundTrip) {
  const Frame f = noise_rgb(9, 5, 4);
  const std::string path = "test_video_rgb.ppm";
  save_pnm(f, path);
  const Frame g = load_pnm(path);
  EXPECT_EQ(g.channels(), 3);
  EXPECT_EQ(g, f);
  std::remove(path.c_str());
}

TEST(Frame, LoadRejectsBadMagic) {
  const std::string path = "test_video_bad.pgm";
  {
    std::ofstream out(path);
    out << "P3\n1 1\n255\n0\n";
  }
  EXPECT_THROW(load_pnm(path), Error);
  std::remove(path.c_str());
}

TEST(Frame, BlurReferenceShrinksByBorder) {
  const Frame f = noise(10, 8, 5);
  const Frame b = blur_reference(f);
  EXPECT_EQ(b.width(), 8);
  EXPECT_EQ(b.height(), 6);
}

// --------------------------------------------------- stream endpoints

struct PipeTb : Module {
  rtl::Bit sof{*this, "sof"};
  core::StreamWires q_w;
  core::CoreStreamContainer queue;
  VideoSource src;
  VgaSink vga;

  PipeTb(std::vector<Frame> frames, VideoSource::Config scfg,
         VgaSink::Config vcfg)
      : Module(nullptr, "tb"),
        q_w(*this, "q", 8, 16),
        queue(this, "q",
              {.kind = core::ContainerKind::Queue, .elem_bits = 8,
               .depth = 1024},
              q_w.impl()),
        src(this, "src", scfg, q_w.producer(), sof, std::move(frames)),
        vga(this, "vga", vcfg, q_w.consumer()) {}
};

TEST(VideoSource, DeliversFramesInOrder) {
  const auto f1 = gradient(8, 6);
  const auto f2 = noise(8, 6, 9);
  PipeTb tb({f1, f2}, {.pixel_interval = 1, .frame_blanking = 4},
            {.width = 8, .height = 6});
  Simulator sim(tb);
  sim.reset();
  ASSERT_TRUE(
      sim.run([&] { return tb.vga.frames().size() == 2; }, 10000).ok())
      << sim.progress_report();
  EXPECT_EQ(tb.vga.frames()[0], f1);
  EXPECT_EQ(tb.vga.frames()[1], f2);
  EXPECT_TRUE(tb.src.done());
}

TEST(VideoSource, PixelIntervalThrottlesRate) {
  const auto f = gradient(8, 4);
  PipeTb tb({f}, {.pixel_interval = 3}, {.width = 8, .height = 4});
  Simulator sim(tb);
  sim.reset();
  const auto st =
      sim.run([&] { return tb.vga.frames().size() == 1; }, 10000);
  ASSERT_TRUE(st.ok()) << sim.progress_report();
  // 32 pixels at one per 3 cycles: at least ~96 cycles.
  EXPECT_GE(st.steps, 3u * 32u - 3u);
}

TEST(VideoSource, LoopModeRepeats) {
  const auto f = gradient(4, 3);
  PipeTb tb({f}, {.pixel_interval = 1, .loop = true},
            {.width = 4, .height = 3});
  Simulator sim(tb);
  sim.reset();
  ASSERT_TRUE(
      sim.run([&] { return tb.vga.frames().size() == 3; }, 10000).ok())
      << sim.progress_report();
  EXPECT_FALSE(tb.src.done());
  for (const auto& fr : tb.vga.frames()) EXPECT_EQ(fr, f);
}

TEST(VgaSink, StrictRateUnderrunThrows) {
  // Source much slower than the display: underrun once streaming.
  const auto f = gradient(8, 4);
  PipeTb tb({f},
            {.pixel_interval = 5, .respect_backpressure = true},
            {.width = 8, .height = 4, .pixel_interval = 1,
             .strict_rate = true});
  Simulator sim(tb);
  sim.reset();
  // Modelled design errors still propagate out of run() (they are
  // bugs in the simulated hardware, not run outcomes).
  EXPECT_THROW((void)sim.run(
                   [&] { return tb.vga.frames().size() == 1; }, 10000),
               ProtocolError);
}

TEST(VgaSink, MatchedRateDoesNotUnderrun) {
  const auto f = gradient(8, 4);
  PipeTb tb({f},
            {.pixel_interval = 1, .respect_backpressure = true},
            {.width = 8, .height = 4, .pixel_interval = 1,
             .strict_rate = true});
  Simulator sim(tb);
  sim.reset();
  EXPECT_TRUE(
      sim.run([&] { return tb.vga.frames().size() == 1; }, 10000).ok());
}

TEST(Endpoints, ReportDecoderAndTimingLogic) {
  PipeTb tb({gradient(64, 48)}, {}, {.width = 64, .height = 48});
  rtl::PrimitiveTally ts, tv;
  tb.src.report(ts);
  tb.vga.report(tv);
  EXPECT_GT(ts.reg_bits, 0);
  EXPECT_GT(tv.reg_bits, 0);
}

}  // namespace
}  // namespace hwpat::video
